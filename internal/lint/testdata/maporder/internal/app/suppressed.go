package app

// Labels carries a justified determinism annotation: the map is
// guaranteed single-entry, so iteration order cannot matter.
func Labels(m map[string]string) []string {
	var out []string
	//lint:deterministic the config layer guarantees this map holds exactly one entry
	for k, v := range m {
		out = append(out, k+"="+v)
	}
	return out
}
