package app

// Runner is dispatched through an interface; the graph falls back to
// every module method with the same name and arity.
type Runner interface {
	Run(n int) int
}

// Fast and Slow both satisfy Runner.
type Fast struct{}

// Run implements Runner.
func (Fast) Run(n int) int { return n }

// Slow also implements Runner.
type Slow struct{}

// Run implements Runner.
func (Slow) Run(n int) int { return n + 1 }

// Drive calls through the interface.
func Drive(r Runner) int { return r.Run(1) }

// box carries a function-typed field; calls through it resolve to every
// address-taken function of matching arity.
type box struct {
	fn func(int) int
}

// double is address-taken below (stored in a field).
func double(n int) int { return n * 2 }

// triple is never referenced as a value, so dynamic calls must not
// target it.
func triple(n int) int { return n * 3 }

// CallField calls through the function-typed field.
func CallField(n int) int {
	b := box{fn: double}
	return b.fn(n)
}

// MethodValue captures a bound method as a value, making Fast.Run
// address-taken.
func MethodValue() func(int) int {
	f := Fast{}
	return f.Run
}

// plain is only ever called directly: a static edge, and never a dynamic
// target.
func plain(n int) int { return n + triple(0) }

// Chain calls plain statically.
func Chain(n int) int { return plain(n) }

// worker runs on a spawned goroutine.
func worker() { _ = plain(1) }

// Spawn launches worker.
func Spawn() {
	go worker()
}
