package core

func exactZero(total float64) bool {
	//lint:ignore float-eq fixture proves the above-line suppression path works
	if total == 0 {
		return true
	}
	return total == 1 //lint:ignore float-eq fixture proves the same-line suppression path works
}
