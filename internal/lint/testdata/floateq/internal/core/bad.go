package core

import "math"

type sample struct{}

func (sample) Value() float64 { return 1 }

func compare(a, b float64, i, j int, s sample) bool {
	if a == b { // want "floating-point == comparison"
		return true
	}
	if a != 1.5 { // want "floating-point != comparison"
		return true
	}
	if math.Sqrt(b) == 2 { // want "floating-point == comparison"
		return true
	}
	if s.Value() == 0 { // want "floating-point == comparison"
		return true
	}
	total := 0.0
	for k := 0; k < j; k++ {
		total += a
	}
	if total == 0 { // want "floating-point == comparison"
		return true
	}
	if float64(i) == b { // want "floating-point == comparison"
		return true
	}
	return i == j
}
