package core

func eq(a, b float64) bool { return a == b }
