package app

import "repro/internal/dep"

type conn struct{}

func (conn) Flush() error { return nil }

func fail() error { return nil }

func use(c conn) {
	fail()    // want "call to fail drops its error result"
	dep.Do()  // want "call to dep.Do drops its error result"
	c.Flush() // want "call to method Flush drops its error result"
}
