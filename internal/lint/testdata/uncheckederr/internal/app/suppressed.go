package app

func best(c conn) {
	//lint:ignore unchecked-error fixture proves the suppression path works
	c.Flush()
}
