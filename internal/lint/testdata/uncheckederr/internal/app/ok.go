package app

import "repro/internal/dep"

func handled(c conn) error {
	if err := fail(); err != nil {
		return err
	}
	_ = dep.Do()
	_ = c.Flush()
	dep.Pure()
	return nil
}
