package app

func helperDrops() { fail() }
