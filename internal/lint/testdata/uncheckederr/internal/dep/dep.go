// Package dep provides a cross-package error-returning callee.
package dep

func Do() error { return nil }

func Pure() int { return 1 }
