package ipv4

import "sync"

// Table declares Freeze, which marks instances as shared after
// construction — so its nil-guarded lazy index is flagged even without a
// goroutine in sight.
type Table struct {
	entries []uint32
	idx     map[uint32]int
}

// Freeze pre-computes the lazy index.
func (t *Table) Freeze() { t.lookup(0) }

func (t *Table) lookup(a uint32) int {
	if t.idx == nil { // want "unsynchronized lazy initialization of Table.idx"
		t.idx = make(map[uint32]int, len(t.entries))
		for i, e := range t.entries {
			t.idx[e] = i
		}
	}
	return t.idx[a]
}

// LockedSet holds the same memo shape under a mutex: synchronized, not
// flagged.
type LockedSet struct {
	mu     sync.Mutex
	ranks  []uint64
	ranked bool
}

// Freeze pre-computes the ranks.
func (s *LockedSet) Freeze() { s.build() }

func (s *LockedSet) build() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ranked {
		return
	}
	s.ranks = []uint64{1}
	s.ranked = true
}

// OnceSet defers the build to a sync.Once: synchronized, not flagged.
type OnceSet struct {
	once  sync.Once
	ranks []uint64
}

// Freeze pre-computes the ranks.
func (s *OnceSet) Freeze() { s.build() }

func (s *OnceSet) build() {
	s.once.Do(func() {
		if s.ranks == nil {
			s.ranks = []uint64{1}
		}
	})
}
