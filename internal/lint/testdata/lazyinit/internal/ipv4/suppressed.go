package ipv4

// Memo carries a justified suppression: the invariant serializing the
// first call is named, so the finding is discharged.
type Memo struct {
	done bool
	v    int
}

// Freeze pre-computes the value.
func (m *Memo) Freeze() { m.compute() }

func (m *Memo) compute() int {
	//lint:ignore lazyinit built once on the loader goroutine before any sharing; pinned by the loader's single-threaded construction test
	if m.done {
		return m.v
	}
	m.v = 42
	m.done = true
	return m.v
}
