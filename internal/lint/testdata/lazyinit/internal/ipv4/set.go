package ipv4

// Set reproduces the pre-Freeze shape of the real ipv4.Set rank-index
// race: Select lazily builds the cumulative rank table on first use, and
// sim.RunExact shares one Set across worker goroutines — two workers'
// first Selects race on the build.
type Set struct {
	addrs  []uint32
	ranks  []uint64
	ranked bool
}

// Add inserts one address.
func (s *Set) Add(a uint32) {
	s.addrs = append(s.addrs, a)
	s.ranked = false
}

// buildRanks memoizes the cumulative index Select consults.
func (s *Set) buildRanks() {
	if s.ranked { // want "unsynchronized lazy initialization of Set.ranked"
		return
	}
	s.ranks = make([]uint64, len(s.addrs)+1)
	for i := range s.addrs {
		s.ranks[i+1] = s.ranks[i] + 1
	}
	s.ranked = true
}

// Select returns the i-th address in rank order, building the index on
// first use.
func (s *Set) Select(i uint64) uint32 {
	s.buildRanks()
	return s.addrs[int(i%uint64(len(s.addrs)))]
}
