package sim

import (
	"sync"

	"fixture/internal/ipv4"
)

// RunExact shards address selection across worker goroutines that all
// consult one shared Set — the PR-5 race shape: every worker's first
// Select tries to build the rank index concurrently.
func RunExact(set *ipv4.Set, n int) []uint32 {
	out := make([]uint32, n)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += 4 {
				out[i] = set.Select(uint64(i))
			}
		}(w)
	}
	wg.Wait()
	return out
}

// local is a private memo on a type that neither declares Freeze nor is
// reachable from any goroutine: not shared, not flagged.
type local struct {
	cache map[int]int
}

func (l *local) get(k int) int {
	if l.cache == nil {
		l.cache = make(map[int]int)
	}
	return l.cache[k]
}

// Lookup drives the unshared memo from plain single-goroutine code.
func Lookup(k int) int {
	var l local
	return l.get(k)
}
