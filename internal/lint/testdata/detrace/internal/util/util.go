package util

import "sync"

var cache sync.Map

// Helper is reached from sim.RunExact through the call graph, so its
// sources taint the root interprocedurally.
func Helper(n int) int {
	total := n
	cache.Range(func(k, v any) bool { // want "sync.Map iteration order leaks"
		total++
		return true
	})
	return total
}
