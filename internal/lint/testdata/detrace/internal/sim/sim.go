package sim

import (
	"math/rand"
	"sort"
	"time"

	"fixture/internal/util"
)

// RunExact is a determinism-contract root in this fixture tree; every
// nondeterminism source in its call tree must be reported unless
// discharged.
func RunExact(seed uint64, counts map[string]int) []string {
	// Collected then sorted: discharged.
	var keys []string
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	// Integer aggregation is order-insensitive: discharged.
	total := 0
	for _, c := range counts {
		total += c
	}

	var out []string
	for k := range counts { // want "map iteration order leaks"
		out = append(out, k+"!")
	}

	if rand.Int()%2 == 0 { // want "unseeded randomness from math/rand.Int"
		out = append(out, "heads")
	}

	stamp := time.Now() // want "wall-clock dependence via time.Now"
	_ = stamp

	//lint:deterministic progress heartbeat only; stripped before output hashing
	_ = time.Now()

	total = util.Helper(total)
	_ = total
	return append(out, keys...)
}
