package sweep

// Map is a determinism-contract root in this fixture tree, shaped like a
// worker pool: goroutine-completion ordering leaks through channel
// receives and multi-case selects.
func Map(tasks []int) []int {
	ch := make(chan int)
	done := make(chan bool)
	go func() {
		for _, t := range tasks {
			ch <- t
		}
		close(ch)
	}()

	var out []int
	for v := range ch { // want "range over a channel fed by goroutines"
		out = append(out, v)
	}

	for range tasks {
		select { // want "select with 2 cases"
		case v := <-ch:
			out = append(out, v)
		case <-done:
		}
	}

	received := make([]int, len(tasks))
	for i := range tasks {
		received[i] = <-ch // want "channel receive in a loop alongside spawned goroutines"
	}

	// A single-case select has only one way to proceed: not a source.
	select {
	case <-done:
	}

	// A receive outside any loop observes one fixed rendezvous: not a source.
	first := <-ch
	out = append(out, first)
	return out
}
