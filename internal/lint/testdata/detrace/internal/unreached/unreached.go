package unreached

import "time"

// Orphan is not reachable from any determinism root, so its wall-clock
// read is outside the contract and must not be reported.
func Orphan() int64 {
	return time.Now().UnixNano()
}
