// Package main is outside the simulated-time packages; the wall clock is
// allowed here.
package main

import "time"

var started = time.Now()
