package sim

import "time"

var now = time.Now()
