package sim

import "time"

func stamp() int64 {
	//lint:ignore no-wallclock fixture proves the suppression path works
	return time.Now().UnixNano()
}
