package sim

import "time"

func tick() time.Duration {
	start := time.Now()          // want "wall-clock call time.Now"
	time.Sleep(time.Millisecond) // want "wall-clock call time.Sleep"
	return time.Since(start)     // want "wall-clock call time.Since"
}
