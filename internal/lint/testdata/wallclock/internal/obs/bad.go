// Package obs mirrors the real internal/obs: telemetry runs on injected
// clocks, so wall-clock reads are findings here too.
package obs

import "time"

type span struct{ start time.Time }

func begin() span { // trailing annotations pin the finding lines
	return span{start: time.Now()} // want "wall-clock call time.Now"
}

func (s span) seconds() float64 {
	return time.Since(s.start).Seconds() // want "wall-clock call time.Since"
}
