package obs

// Clock is the injected-time seam the real internal/obs uses: the
// simulation tick loop advances it, so spans and histograms never need
// the time package at all.
type Clock interface{ Seconds() float64 }

type okSpan struct {
	clock Clock
	start float64
}

func startSpan(c Clock) okSpan { return okSpan{clock: c, start: c.Seconds()} }

func (s okSpan) elapsed() float64 { return s.clock.Seconds() - s.start }
