package sweep

import "sync"

func fanoutOK(xs []int, sink func(int)) {
	var wg sync.WaitGroup
	for i, x := range xs {
		x := x
		wg.Add(1)
		// The loop index is passed as an argument and x is rebound per
		// iteration: both safe, neither flagged.
		go func(i int) {
			defer wg.Done()
			sink(i)
			sink(x)
		}(i)
	}
	wg.Wait()
}

func tallyLocked(xs []int) map[int]int {
	counts := make(map[int]int)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for idx := 0; idx < len(xs); idx++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mu.Lock()
			counts[i]++
			mu.Unlock()
		}(idx)
	}
	wg.Wait()
	return counts
}

func localMap(n int, use func(map[int]int)) {
	done := make(chan struct{})
	go func() {
		local := make(map[int]int)
		local[n] = n
		use(local)
		close(done)
	}()
	<-done
}
