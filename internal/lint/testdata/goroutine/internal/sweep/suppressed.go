package sweep

func capture(xs []int, sink func(int)) {
	for i := range xs {
		go func() {
			//lint:ignore goroutine-capture fixture proves the suppression path works
			sink(i)
		}()
	}
}
