package sweep

import "sync"

func fanout(xs []int, sink func(int)) {
	var wg sync.WaitGroup
	for i, x := range xs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sink(i) // want "captures loop variable"
			sink(x) // want "captures loop variable"
		}()
	}
	wg.Wait()
}

func tally(xs []int) map[int]int {
	counts := make(map[int]int)
	var wg sync.WaitGroup
	for idx := 0; idx < len(xs); idx++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			counts[i]++         // want "write to shared map"
			delete(counts, i+1) // want "delete from shared map"
		}(idx)
	}
	wg.Wait()
	return counts
}
