package sim

import (
	//lint:ignore banned-import fixture proves the suppression path works
	xrand "math/rand"
)

var _ = xrand.Int
