package sim

import (
	"crypto/rand" // want "banned outside internal/rng"
	"fmt"
	mrand "math/rand" // want "banned outside internal/rng"
	v2 "math/rand/v2" // want "banned outside internal/rng"
)

var _ = rand.Read
var _ = mrand.Int
var _ = v2.Int
var _ = fmt.Println
