package sim

import "math/rand"

var _ = rand.Int
