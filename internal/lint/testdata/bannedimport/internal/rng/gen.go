// Package rng is the one directory allowed to import the banned packages.
package rng

import (
	"crypto/rand"
	mrand "math/rand"
)

var _ = rand.Read
var _ = mrand.Int
