package lint

import "strings"

// bannedImportPaths are the RNG packages that bypass internal/rng. Both
// math/rand generations are banned (global state, version-dependent
// streams); crypto/rand is banned because it is irreproducible by design.
var bannedImportPaths = map[string]string{
	"math/rand":    "global state and Go-version-dependent streams break reproducibility",
	"math/rand/v2": "unseedable global functions break reproducibility",
	"crypto/rand":  "irreproducible by design",
}

// rngDir is the one package allowed to import the banned packages: it is
// the repo's deterministic RNG substrate and may wrap or cross-check them.
const rngDir = "internal/rng"

// BannedImport forbids math/rand and crypto/rand outside internal/rng and
// _test.go files: every stream of randomness in the library must flow
// through internal/rng so a single seed pins the whole computation.
var BannedImport = &Analyzer{
	Name: "banned-import",
	Doc:  "math/rand and crypto/rand are forbidden outside internal/rng; use internal/rng",
	Run:  runBannedImport,
}

func runBannedImport(pass *Pass) {
	if pass.File.Test || underDir(pass.Package.Rel, rngDir) {
		return
	}
	for _, imp := range pass.File.AST.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		why, banned := bannedImportPaths[path]
		if !banned {
			continue
		}
		pass.Report(imp, "import %q is banned outside %s (%s); draw randomness from internal/rng", path, rngDir, why)
	}
}
