package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file classifies the body of a `range` over a map: which of its
// effects are insensitive to iteration order (integer aggregation, set
// building, per-key writes) and which leak the map's random order into
// observable state (appends without a later sort, output writes, JSON
// emission, channel sends, last-write-wins assignments, floating-point
// accumulation). Both detrace (interprocedural taint) and maporder (local
// rule) consume the classification.

// rangeIssue is one order-dependent effect inside a map-range body.
type rangeIssue struct {
	// node locates the effect.
	node ast.Node
	// kind tags the effect: "append", "output", "json", "send", "assign",
	// "float-accum", "call", "return".
	kind string
	// msg explains it.
	msg string
}

// outputFuncs are the fmt/print family whose call inside a map range
// emits output in iteration order.
var outputFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// jsonFuncs are the encoding/json entry points.
var jsonFuncs = map[string]bool{
	"Marshal": true, "MarshalIndent": true, "Encode": true,
}

// writerMethods are io-writer method names that emit output.
var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

// benignBuiltins may be called inside a map-range body without leaking
// iteration order.
var benignBuiltins = map[string]bool{
	"append": true, "len": true, "cap": true, "delete": true,
	"min": true, "max": true, "abs": true, "copy": true, "clear": true,
	"make": true, "new": true, "panic": true, "print": false, "println": false,
}

// mapRangeIssues classifies the body of a range statement over a map.
// iterVars are the names bound by the range header (or a sync.Map Range
// callback's parameters). encl is the enclosing function body, searched
// for sort calls that discharge appends.
func mapRangeIssues(pkg *Package, body *ast.BlockStmt, iterVars map[string]bool, after token.Pos, encl *ast.BlockStmt) []rangeIssue {
	c := &rangeClassifier{
		pkg:      pkg,
		locals:   make(map[string]bool),
		iterVars: iterVars,
	}
	c.stmts(body.List)

	var issues []rangeIssue
	for _, a := range c.appendsOrder {
		if !sortedAfter(encl, after, a.target) {
			issues = append(issues, rangeIssue{
				node: a.node,
				kind: "append",
				msg:  "append to " + a.target + " inside a map range leaks iteration order; collect then sort " + a.target + " before use",
			})
		}
	}
	return append(issues, c.issues...)
}

// appendTarget is one `x = append(x, ...)` seen in the body.
type appendTarget struct {
	node   ast.Node
	target string
}

// rangeClassifier walks a map-range body accumulating issues.
type rangeClassifier struct {
	pkg      *Package
	locals   map[string]bool
	iterVars map[string]bool

	appendsOrder []appendTarget
	appendSeen   map[string]bool
	issues       []rangeIssue
}

func (c *rangeClassifier) addIssue(n ast.Node, kind, msg string) {
	c.issues = append(c.issues, rangeIssue{node: n, kind: kind, msg: msg})
}

func (c *rangeClassifier) stmts(list []ast.Stmt) {
	for _, s := range list {
		c.stmt(s)
	}
}

func (c *rangeClassifier) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.AssignStmt:
		c.assign(st)
	case *ast.IncDecStmt:
		// x++ / x-- add the same delta every iteration, so any order
		// produces the same sequence of operations.
		c.checkExprs(st.X)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						c.locals[name.Name] = true
					}
					for _, v := range vs.Values {
						c.checkExprs(v)
					}
				}
			}
		}
	case *ast.ExprStmt:
		c.callEffect(st.X)
	case *ast.SendStmt:
		c.addIssue(st, "send", "send on a channel inside a map range publishes values in iteration order")
	case *ast.ReturnStmt:
		c.addIssue(st, "return", "return inside a map range picks an arbitrary entry; iterate a sorted copy instead")
	case *ast.BranchStmt:
		// break/continue/goto: control only.
	case *ast.IfStmt:
		c.checkExprs(st.Cond)
		c.stmts(st.Body.List)
		if st.Else != nil {
			c.stmt(st.Else)
		}
		if st.Init != nil {
			c.stmt(st.Init)
		}
	case *ast.BlockStmt:
		c.stmts(st.List)
	case *ast.ForStmt:
		if st.Init != nil {
			c.stmt(st.Init)
		}
		if st.Post != nil {
			c.stmt(st.Post)
		}
		c.checkExprs(st.Cond)
		c.stmts(st.Body.List)
	case *ast.RangeStmt:
		for _, e := range []ast.Expr{st.Key, st.Value} {
			if id, ok := e.(*ast.Ident); ok && st.Tok == token.DEFINE {
				c.locals[id.Name] = true
			}
		}
		c.checkExprs(st.X)
		c.stmts(st.Body.List)
	case *ast.SwitchStmt:
		if st.Init != nil {
			c.stmt(st.Init)
		}
		c.checkExprs(st.Tag)
		for _, cl := range st.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				c.checkExprs(cc.List...)
				c.stmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.GoStmt, *ast.DeferStmt, *ast.LabeledStmt:
		// Rare inside map ranges; conservatively order-dependent.
		c.addIssue(s, "call", "statement inside a map range whose effects may depend on iteration order")
	case *ast.EmptyStmt:
	default:
		c.addIssue(s, "call", "statement inside a map range whose effects may depend on iteration order")
	}
}

// assign classifies one assignment inside the body.
func (c *rangeClassifier) assign(st *ast.AssignStmt) {
	// x := ... declares body-locals; the values still get checked.
	if st.Tok == token.DEFINE {
		for _, lhs := range st.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				c.locals[id.Name] = true
			}
		}
		for _, rhs := range st.Rhs {
			c.checkExprs(rhs)
		}
		return
	}
	// x = append(x, ...): recorded for the sorted-later check.
	if len(st.Lhs) == 1 && len(st.Rhs) == 1 && st.Tok == token.ASSIGN {
		if call, ok := st.Rhs[0].(*ast.CallExpr); ok {
			if fn, ok := call.Fun.(*ast.Ident); ok && fn.Name == "append" && len(call.Args) > 0 {
				target := types.ExprString(st.Lhs[0])
				if types.ExprString(call.Args[0]) == target {
					if id, ok := st.Lhs[0].(*ast.Ident); ok && c.locals[id.Name] {
						// Appending to a slice created inside the body:
						// per-iteration scratch, discarded or attached
						// per key.
						for _, a := range call.Args[1:] {
							c.checkExprs(a)
						}
						return
					}
					c.appendsOrder = append(c.appendsOrder, appendTarget{node: st, target: target})
					for _, a := range call.Args[1:] {
						c.checkExprs(a)
					}
					return
				}
			}
		}
	}
	for i, lhs := range st.Lhs {
		c.assignTarget(st, lhs)
		if i < len(st.Rhs) {
			c.checkExprs(st.Rhs[i])
		}
	}
}

// assignTarget classifies one assignment destination.
func (c *rangeClassifier) assignTarget(st *ast.AssignStmt, lhs ast.Expr) {
	op := st.Tok
	switch t := lhs.(type) {
	case *ast.Ident:
		if t.Name == "_" || c.locals[t.Name] {
			return
		}
		c.scalarTarget(st, t, op)
	case *ast.IndexExpr:
		// Element writes keyed by the iteration variables touch each
		// entry once, so plain stores and integer accumulation are
		// order-insensitive. Indexes built from outer state (slot
		// counters) reintroduce ordering.
		if !c.indexFromIter(t) {
			c.addIssue(st, "assign", "element write "+types.ExprString(lhs)+" indexed by outer state inside a map range depends on iteration order")
			return
		}
		if op != token.ASSIGN {
			c.accumTarget(st, t, op)
		}
	case *ast.StarExpr, *ast.SelectorExpr:
		c.scalarTarget(st, lhs, op)
	default:
		c.addIssue(st, "assign", "assignment inside a map range whose target may depend on iteration order")
	}
}

// scalarTarget classifies a write to a single outer variable.
func (c *rangeClassifier) scalarTarget(st *ast.AssignStmt, lhs ast.Expr, op token.Token) {
	if op == token.ASSIGN {
		c.addIssue(st, "assign", "assignment to "+types.ExprString(lhs)+" inside a map range keeps the last-iterated entry; iteration order decides which")
		return
	}
	c.accumTarget(st, lhs, op)
}

// accumTarget classifies compound accumulation (+=, |=, …) by element type:
// exact for integers and booleans, order-sensitive for floats and strings.
func (c *rangeClassifier) accumTarget(st *ast.AssignStmt, lhs ast.Expr, op token.Token) {
	t := c.pkg.TypeOf(lhs)
	if t == nil {
		c.addIssue(st, "assign", "accumulation into "+types.ExprString(lhs)+" inside a map range (untyped; cannot prove order-insensitive)")
		return
	}
	basic, ok := t.Underlying().(*types.Basic)
	if !ok {
		c.addIssue(st, "assign", "accumulation into "+types.ExprString(lhs)+" inside a map range may depend on iteration order")
		return
	}
	info := basic.Info()
	switch {
	case info&types.IsInteger != 0, info&types.IsBoolean != 0:
		// Exact and commutative.
	case info&types.IsFloat != 0, info&types.IsComplex != 0:
		c.addIssue(st, "float-accum", "floating-point accumulation into "+types.ExprString(lhs)+" inside a map range is not bit-reproducible; iterate sorted keys")
	case info&types.IsString != 0 && op == token.ADD_ASSIGN:
		c.addIssue(st, "assign", "string concatenation into "+types.ExprString(lhs)+" inside a map range concatenates in iteration order")
	default:
		c.addIssue(st, "assign", "accumulation into "+types.ExprString(lhs)+" inside a map range may depend on iteration order")
	}
}

// indexFromIter reports whether every identifier in the index chain of an
// element write (excluding the container itself) is an iteration variable,
// a body-local, or a constant.
func (c *rangeClassifier) indexFromIter(e *ast.IndexExpr) bool {
	ok := true
	var walk func(x ast.Expr)
	walk = func(x ast.Expr) {
		ix, isIx := x.(*ast.IndexExpr)
		if !isIx {
			return // reached the container
		}
		ast.Inspect(ix.Index, func(n ast.Node) bool {
			if id, isID := n.(*ast.Ident); isID {
				if !c.iterVars[id.Name] && !c.locals[id.Name] && !c.isConst(id) {
					ok = false
				}
			}
			return true
		})
		walk(ix.X)
	}
	walk(e)
	return ok
}

// isConst reports whether id denotes a constant.
func (c *rangeClassifier) isConst(id *ast.Ident) bool {
	obj := c.pkg.ObjectOf(id)
	_, isConst := obj.(*types.Const)
	return isConst
}

// checkExprs scans expressions for calls with order-dependent effects
// (anything but builtins, conversions, and calls whose results feed the
// surrounding order-insensitive write).
func (c *rangeClassifier) checkExprs(exprs ...ast.Expr) {
	for _, e := range exprs {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			c.callEffect(call)
			return false // callEffect recurses into args itself
		})
	}
}

// callEffect classifies one call expression inside the body.
func (c *rangeClassifier) callEffect(e ast.Expr) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		c.checkExprs(e)
		return
	}
	for _, a := range call.Args {
		c.checkExprs(a)
	}
	switch fn := unwrapFun(call.Fun).(type) {
	case *ast.Ident:
		if benign, known := benignBuiltins[fn.Name]; known && benign {
			if obj := c.pkg.ObjectOf(fn); obj == nil || isBuiltin(obj) {
				return
			}
		}
		if c.isConversion(call) {
			return
		}
		c.addIssue(call, "call", "call to "+fn.Name+" inside a map range runs in iteration order; hoist it or iterate sorted keys")
	case *ast.SelectorExpr:
		name := fn.Sel.Name
		pkgPath := c.usePkgPath(fn)
		switch {
		case pkgPath == "fmt" && outputFuncs[name]:
			c.addIssue(call, "output", "fmt."+name+" inside a map range writes output in iteration order; iterate sorted keys")
		case pkgPath == "encoding/json" && jsonFuncs[name]:
			c.addIssue(call, "json", "json."+name+" inside a map range emits JSON in iteration order; iterate sorted keys")
		case name == "Encode" || (writerMethods[name] && pkgPath == ""):
			c.addIssue(call, "output", name+" inside a map range writes output in iteration order; iterate sorted keys")
		case pkgPath == "fmt":
			// Sprintf and friends are pure.
		default:
			if c.isConversion(call) {
				return
			}
			c.addIssue(call, "call", "call to "+types.ExprString(fn)+" inside a map range runs in iteration order; hoist it or iterate sorted keys")
		}
	default:
		if c.isConversion(call) {
			return
		}
		c.addIssue(call, "call", "indirect call inside a map range runs in iteration order")
	}
}

// usePkgPath returns the import path when sel is a qualified identifier
// (pkg.Name), else "".
func (c *rangeClassifier) usePkgPath(sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := c.pkg.ObjectOf(id).(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// isConversion reports whether call is a type conversion (typed check
// with a syntactic fallback on capitalized single-argument idents that
// resolve to no object, e.g. fixture trees missing type info).
func (c *rangeClassifier) isConversion(call *ast.CallExpr) bool {
	if c.pkg.TypesInfo != nil {
		if tv, ok := c.pkg.TypesInfo.Types[call.Fun]; ok {
			return tv.IsType()
		}
	}
	switch fn := unwrapFun(call.Fun).(type) {
	case *ast.Ident:
		switch fn.Name {
		case "float64", "float32", "int", "int32", "int64", "uint", "uint32",
			"uint64", "string", "byte", "rune", "bool", "uintptr":
			return true
		}
	}
	return false
}

// isBuiltin reports whether obj is a universe builtin.
func isBuiltin(obj types.Object) bool {
	_, ok := obj.(*types.Builtin)
	return ok
}

// sortFuncs recognized as deterministic sorts: sort.X / slices.X calls
// and .Sort methods.
func isSortCall(call *ast.CallExpr) bool {
	sel, ok := unwrapFun(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if id, ok := sel.X.(*ast.Ident); ok && (id.Name == "sort" || id.Name == "slices") {
		switch sel.Sel.Name {
		case "Strings", "Ints", "Float64s", "Sort", "Slice", "SliceStable",
			"Stable", "SortFunc", "SortStableFunc":
			return true
		}
	}
	return sel.Sel.Name == "Sort"
}

// sortedAfter reports whether target (a rendered expression) appears in a
// recognized sort call positioned after pos inside body.
func sortedAfter(body *ast.BlockStmt, pos token.Pos, target string) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || !isSortCall(call) {
			return true
		}
		scan := func(e ast.Expr) {
			ast.Inspect(e, func(m ast.Node) bool {
				if x, ok := m.(ast.Expr); ok && types.ExprString(x) == target {
					found = true
				}
				return true
			})
		}
		for _, a := range call.Args {
			scan(a)
		}
		if sel, ok := unwrapFun(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Sort" {
			scan(sel.X)
		}
		return true
	})
	return found
}

// isMapRange reports whether rs ranges over a map, preferring type
// information and falling back to the syntactic map-variable heuristic.
func isMapRange(pkg *Package, fnBody *ast.BlockStmt, rs *ast.RangeStmt) bool {
	if t := pkg.TypeOf(rs.X); t != nil {
		_, ok := t.Underlying().(*types.Map)
		return ok
	}
	if id, ok := rs.X.(*ast.Ident); ok && fnBody != nil {
		return collectMapVars(fnBody)[id.Name]
	}
	_, ok := rs.X.(*ast.MapType)
	return ok
}

// rangeIterVars returns the names bound by a range statement header.
func rangeIterVars(rs *ast.RangeStmt) map[string]bool {
	vars := make(map[string]bool)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			vars[id.Name] = true
		}
	}
	return vars
}
