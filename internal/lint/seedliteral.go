package lint

import (
	"go/ast"
	"go/token"
)

// seedConstructors are the internal/rng constructors whose final argument
// is a seed.
var seedConstructors = map[string]bool{
	"NewLCG32":      true,
	"NewMSVCRT":     true,
	"NewSplitMix64": true,
	"NewXoshiro":    true,
}

// seedMethods are reseeding methods whose single argument is a seed.
var seedMethods = map[string]bool{
	"Seed":  true,
	"Srand": true,
}

// SeedLiteral flags RNG construction or reseeding with a hard-coded
// integer seed outside tests and examples. A literal seed in library or
// command code silently de-randomizes every sweep built on top of it; the
// seed must arrive through configuration so callers control replication.
var SeedLiteral = &Analyzer{
	Name: "seed-literal",
	Doc:  "hard-coded RNG seed outside tests/examples; plumb the seed through configuration",
	Run:  runSeedLiteral,
}

func runSeedLiteral(pass *Pass) {
	if pass.File.Test || underDir(pass.Package.Rel, "examples") {
		return
	}
	ast.Inspect(pass.File.AST, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		var name string
		switch fn := call.Fun.(type) {
		case *ast.Ident:
			name = fn.Name
		case *ast.SelectorExpr:
			name = fn.Sel.Name
		default:
			return true
		}
		switch {
		case seedConstructors[name]:
			seed := call.Args[len(call.Args)-1]
			if isIntLiteral(seed) {
				pass.Report(seed, "%s called with hard-coded seed %s; take the seed from configuration so runs stay replicable", name, litText(seed))
			}
		case seedMethods[name] && len(call.Args) == 1:
			if _, isMethod := call.Fun.(*ast.SelectorExpr); isMethod && isIntLiteral(call.Args[0]) {
				pass.Report(call.Args[0], "%s called with hard-coded seed %s; take the seed from configuration so runs stay replicable", name, litText(call.Args[0]))
			}
		}
		return true
	})
}

// isIntLiteral reports whether e is an integer literal, possibly wrapped
// in a sign, parentheses, or an integer conversion like uint32(5).
func isIntLiteral(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.BasicLit:
		return x.Kind == token.INT
	case *ast.ParenExpr:
		return isIntLiteral(x.X)
	case *ast.UnaryExpr:
		return isIntLiteral(x.X)
	case *ast.CallExpr:
		if fn, ok := x.Fun.(*ast.Ident); ok && len(x.Args) == 1 {
			switch fn.Name {
			case "int", "int8", "int16", "int32", "int64",
				"uint", "uint8", "uint16", "uint32", "uint64", "uintptr":
				return isIntLiteral(x.Args[0])
			}
		}
	}
	return false
}

// litText renders the literal core of e for the finding message.
func litText(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.BasicLit:
		return x.Value
	case *ast.ParenExpr:
		return litText(x.X)
	case *ast.UnaryExpr:
		return x.Op.String() + litText(x.X)
	case *ast.CallExpr:
		if len(x.Args) == 1 {
			return litText(x.Args[0])
		}
	}
	return "?"
}
