package lint

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// A findings baseline records known, accepted findings so that a tree can
// adopt a new analyzer without stopping the world: existing findings go
// into the baseline, new code is held to zero findings, and the baseline
// only ever shrinks. Keys deliberately omit line numbers — unrelated
// edits move lines constantly — so an entry is
//
//	rule|file|message
//
// one per line, '#' starting a comment. Renaming a file or rewording a
// message retires the entry (it surfaces as stale) and re-reports the
// finding, which is the conservative direction.

// BaselineKey renders f's drift-resistant baseline key.
func (f Finding) BaselineKey() string {
	return f.Rule + "|" + f.Pos.Filename + "|" + f.Message
}

// LoadBaseline reads a baseline file into a set of keys. A missing file
// is an empty baseline.
func LoadBaseline(path string) (map[string]bool, error) {
	file, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return map[string]bool{}, nil
		}
		return nil, err
	}
	defer file.Close()
	keys := make(map[string]bool)
	sc := bufio.NewScanner(file)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		keys[line] = true
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return keys, nil
}

// FilterBaseline splits findings against a baseline: fresh findings not
// covered by any entry, and stale entries covering nothing. Every
// baseline entry suppresses any number of findings with its key (a file
// can repeat the same finding on several lines).
func FilterBaseline(findings []Finding, baseline map[string]bool) (fresh []Finding, stale []string) {
	used := make(map[string]bool, len(baseline))
	for _, f := range findings {
		key := f.BaselineKey()
		if baseline[key] {
			used[key] = true
			continue
		}
		fresh = append(fresh, f)
	}
	for key := range baseline {
		if !used[key] {
			stale = append(stale, key)
		}
	}
	sort.Strings(stale)
	return fresh, stale
}

// WriteBaseline renders findings as a baseline file, sorted and
// deduplicated, with a header explaining the semantics.
func WriteBaseline(w io.Writer, findings []Finding) error {
	keys := make([]string, 0, len(findings))
	seen := make(map[string]bool, len(findings))
	for _, f := range findings {
		key := f.BaselineKey()
		if !seen[key] {
			seen[key] = true
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	if _, err := fmt.Fprintf(w, "# reprolint findings baseline: rule|file|message, one per line.\n# Accepted pre-existing findings; new findings fail the build. Shrink, never grow.\n"); err != nil {
		return err
	}
	for _, key := range keys {
		if _, err := fmt.Fprintln(w, key); err != nil {
			return err
		}
	}
	return nil
}
