package lint

import (
	"path/filepath"
	"testing"
)

func loadFixtureProg(t *testing.T, dir string) *Program {
	t.Helper()
	root := filepath.Join("testdata", dir)
	prog, err := LoadAt(root, root)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// single unwraps a one-element Lookup result.
func single(t *testing.T, nodes []*FuncNode) *FuncNode {
	t.Helper()
	if len(nodes) != 1 {
		t.Fatalf("Lookup returned %d nodes, want 1", len(nodes))
	}
	return nodes[0]
}

func calleeNames(n *FuncNode) map[string]bool {
	out := make(map[string]bool)
	for _, e := range n.Callees {
		out[e.Callee.Name()] = true
	}
	return out
}

func TestCallGraphStaticEdge(t *testing.T) {
	g := loadFixtureProg(t, "callgraph").CallGraph()
	chain := single(t, g.Lookup("internal/app", "Chain"))
	names := calleeNames(chain)
	if !names["internal/app.plain"] {
		t.Errorf("Chain callees = %v, want internal/app.plain", names)
	}
	if len(names) != 1 {
		t.Errorf("Chain should have exactly the static edge, got %v", names)
	}
}

func TestCallGraphInterfaceDispatchFallback(t *testing.T) {
	g := loadFixtureProg(t, "callgraph").CallGraph()
	drive := single(t, g.Lookup("internal/app", "Drive"))
	names := calleeNames(drive)
	for _, want := range []string{"internal/app.(Fast).Run", "internal/app.(Slow).Run"} {
		if !names[want] {
			t.Errorf("Drive callees = %v, want %s (interface fallback)", names, want)
		}
	}
}

func TestCallGraphFunctionTypedFieldAndMethodValue(t *testing.T) {
	g := loadFixtureProg(t, "callgraph").CallGraph()
	cf := single(t, g.Lookup("internal/app", "CallField"))
	names := calleeNames(cf)
	// double is stored in the field; Fast.Run is captured as a method
	// value elsewhere — both are address-taken with arity 1.
	if !names["internal/app.double"] {
		t.Errorf("CallField callees = %v, want internal/app.double", names)
	}
	if !names["internal/app.(Fast).Run"] {
		t.Errorf("CallField callees = %v, want internal/app.(Fast).Run (method value)", names)
	}
	// triple and plain are never referenced as values: the dynamic
	// fallback must not invent edges to them.
	if names["internal/app.triple"] || names["internal/app.plain"] {
		t.Errorf("CallField callees %v include a non-address-taken function", names)
	}
}

func TestCallGraphGoEntryAndGoReachable(t *testing.T) {
	g := loadFixtureProg(t, "callgraph").CallGraph()
	worker := single(t, g.Lookup("internal/app", "worker"))
	if !worker.GoEntry {
		t.Error("worker spawned with go is not marked GoEntry")
	}
	reach := g.GoReachable()
	if !reach[worker] {
		t.Error("worker not in GoReachable")
	}
	plain := single(t, g.Lookup("internal/app", "plain"))
	if !reach[plain] {
		t.Error("plain (called by worker) not in GoReachable")
	}
	spawn := single(t, g.Lookup("internal/app", "Spawn"))
	if reach[spawn] {
		t.Error("Spawn itself should not be goroutine-reachable")
	}
}

func TestCallGraphLookupMethodSyntax(t *testing.T) {
	g := loadFixtureProg(t, "callgraph").CallGraph()
	if n := single(t, g.Lookup("internal/app", "Fast.Run")); n.Name() != "internal/app.(Fast).Run" {
		t.Errorf("Lookup(Fast.Run) = %s", n.Name())
	}
	if got := g.Lookup("internal/app", "NoSuch.Run"); len(got) != 0 {
		t.Errorf("Lookup(NoSuch.Run) = %v, want empty", got)
	}
}
