package lint

import (
	"go/ast"
	"strings"
)

// UncheckedError flags statement-position calls that drop an error
// returned by a function or method declared in the loaded tree. Stdlib
// calls are not flagged (their signatures are never loaded) unless they
// collide with a repo method name, in which case a suppression with a
// reason is the escape hatch. Deferred calls are deliberately exempt:
// `defer f.Close()` on a read path is idiomatic.
var UncheckedError = &Analyzer{
	Name: "unchecked-error",
	Doc:  "dropped error results from repo functions; handle the error or assign it to _",
	Run:  runUncheckedError,
}

func lastIsError(results []string) bool {
	return len(results) > 0 && results[len(results)-1] == "error"
}

func runUncheckedError(pass *Pass) {
	if pass.File.Test {
		return
	}
	ast.Inspect(pass.File.AST, func(n ast.Node) bool {
		stmt, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := stmt.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fn := call.Fun.(type) {
		case *ast.Ident:
			// Unqualified call: a top-level function of this package.
			if lastIsError(pass.Program.FuncResults(pass.File.AST.Name.Name, fn.Name)) {
				pass.Report(call, "call to %s drops its error result; handle it or assign to _ explicitly", fn.Name)
			}
		case *ast.SelectorExpr:
			if id, ok := fn.X.(*ast.Ident); ok {
				if pkgName, imported := importedPackageName(pass.File.AST, id.Name); imported {
					if lastIsError(pass.Program.FuncResults(pkgName, fn.Sel.Name)) {
						pass.Report(call, "call to %s.%s drops its error result; handle it or assign to _ explicitly", id.Name, fn.Sel.Name)
					}
					return true
				}
			}
			// Method call: flag only when every loaded method with this
			// name returns an error, so name lumping stays conservative.
			if pass.Program.MethodAlwaysReturns(fn.Sel.Name, lastIsError) {
				pass.Report(call, "call to method %s drops its error result; handle it or assign to _ explicitly", fn.Sel.Name)
			}
		}
		return true
	})
}

// importedPackageName maps a local import name used in f to the imported
// package's name (assumed to equal the import path's last element, which
// holds throughout this repo). The bool reports whether localName refers
// to an import at all.
func importedPackageName(f *ast.File, localName string) (string, bool) {
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		base := path
		if i := strings.LastIndex(path, "/"); i >= 0 {
			base = path[i+1:]
		}
		name := base
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == localName {
			return base, true
		}
	}
	return "", false
}
