package lint

import (
	"go/ast"
	"go/token"
)

// FloatEq flags == and != between floating-point expressions outside test
// files. Exact float comparison is almost always a latent bug in the
// statistics pipeline; the rare legitimate exact checks (rejection
// sampling, comparing against a value produced by exact integer sums) take
// a //lint:ignore with the justification spelled out.
var FloatEq = &Analyzer{
	Name: "float-eq",
	Doc:  "== / != between floating-point expressions; compare with a tolerance",
	Run:  runFloatEq,
}

// mathFloatFuncs are math-package functions with a single float64 result.
var mathFloatFuncs = map[string]bool{
	"Abs": true, "Ceil": true, "Copysign": true, "Cbrt": true, "Dim": true,
	"Exp": true, "Exp2": true, "Expm1": true, "Floor": true, "Hypot": true,
	"Inf": true, "Log": true, "Log10": true, "Log1p": true, "Log2": true,
	"Max": true, "Min": true, "Mod": true, "NaN": true, "Pow": true,
	"Remainder": true, "Round": true, "RoundToEven": true, "Sqrt": true,
	"Trunc": true, "Sin": true, "Cos": true, "Tan": true, "Atan": true,
	"Atan2": true, "Asin": true, "Acos": true, "Gamma": true, "Erf": true,
	"Erfc": true,
}

// mathFloatConsts are math-package floating-point constants.
var mathFloatConsts = map[string]bool{
	"Pi": true, "E": true, "Phi": true, "Sqrt2": true, "SqrtE": true,
	"SqrtPi": true, "SqrtPhi": true, "Ln2": true, "Log2E": true,
	"Ln10": true, "Log10E": true, "MaxFloat64": true, "MaxFloat32": true,
	"SmallestNonzeroFloat64": true, "SmallestNonzeroFloat32": true,
}

func isFloatType(s string) bool { return s == "float64" || s == "float32" }

func runFloatEq(pass *Pass) {
	if pass.File.Test {
		return
	}
	pkgFloats := make(map[string]bool)
	for _, decl := range pass.File.AST.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			collectFloatSpec(vs, pkgFloats, nil, "")
		}
	}
	for _, decl := range pass.File.AST.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		checkFuncFloatEq(pass, fd, pkgFloats)
	}
}

// checkFuncFloatEq runs the per-function float inference and then flags
// float equality comparisons in the body.
func checkFuncFloatEq(pass *Pass, fd *ast.FuncDecl, pkgFloats map[string]bool) {
	mathName := importName(pass.File.AST, "math")
	vars := make(map[string]bool)
	for name, ok := range pkgFloats {
		vars[name] = ok
	}
	for _, fields := range []*ast.FieldList{fd.Recv, fd.Type.Params, fd.Type.Results} {
		if fields == nil {
			continue
		}
		for _, field := range fields.List {
			if !isFloatType(typeString(field.Type)) {
				continue
			}
			for _, name := range field.Names {
				vars[name.Name] = true
			}
		}
	}
	// Two inference passes over the body so a name assigned from another
	// float local later in the source still resolves; shadowing is
	// deliberately ignored (this is a lint heuristic, not a type checker).
	for i := 0; i < 2; i++ {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ValueSpec:
				collectFloatSpec(s, vars, pass, mathName)
			case *ast.AssignStmt:
				if len(s.Lhs) != len(s.Rhs) {
					return true
				}
				for j, lhs := range s.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					if floatish(pass, s.Rhs[j], vars, mathName) {
						vars[id.Name] = true
					}
				}
			case *ast.RangeStmt:
				// range over a float slice is invisible to this pass; the
				// common sources (literals, conversions, math calls) are
				// what matter.
				_ = s
			}
			return true
		})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		if floatish(pass, be.X, vars, mathName) || floatish(pass, be.Y, vars, mathName) {
			pass.Report(be, "floating-point %s comparison; use a tolerance (e.g. math.Abs(a-b) <= eps) or justify with //lint:ignore", be.Op)
		}
		return true
	})
}

// collectFloatSpec marks names declared float by a var/const spec, either
// via an explicit float type or via floatish initializer expressions.
func collectFloatSpec(vs *ast.ValueSpec, vars map[string]bool, pass *Pass, mathName string) {
	if vs.Type != nil {
		if isFloatType(typeString(vs.Type)) {
			for _, name := range vs.Names {
				vars[name.Name] = true
			}
		}
		return
	}
	if len(vs.Values) != len(vs.Names) {
		return
	}
	for i, name := range vs.Names {
		if floatish(pass, vs.Values[i], vars, mathName) {
			vars[name.Name] = true
		}
	}
}

// floatish reports whether e is syntactically known to be floating point:
// float literals, float32/float64 conversions, math package calls and
// constants, identifiers inferred float, single-float-result functions and
// methods from the program index, and arithmetic over any of those.
func floatish(pass *Pass, e ast.Expr, vars map[string]bool, mathName string) bool {
	switch x := e.(type) {
	case *ast.BasicLit:
		return x.Kind == token.FLOAT
	case *ast.Ident:
		return vars[x.Name]
	case *ast.ParenExpr:
		return floatish(pass, x.X, vars, mathName)
	case *ast.UnaryExpr:
		return floatish(pass, x.X, vars, mathName)
	case *ast.BinaryExpr:
		switch x.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
			return floatish(pass, x.X, vars, mathName) || floatish(pass, x.Y, vars, mathName)
		}
		return false
	case *ast.SelectorExpr:
		if id, ok := x.X.(*ast.Ident); ok && mathName != "" && id.Name == mathName {
			return mathFloatConsts[x.Sel.Name]
		}
		return false
	case *ast.CallExpr:
		return callReturnsFloat(pass, x, mathName)
	}
	return false
}

// callReturnsFloat reports whether a call syntactically yields a float:
// an explicit conversion, a math function, or a loaded function/method
// whose every same-name declaration has a single float result.
func callReturnsFloat(pass *Pass, call *ast.CallExpr, mathName string) bool {
	singleFloat := func(results []string) bool {
		return len(results) == 1 && isFloatType(results[0])
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		if isFloatType(fn.Name) {
			return true
		}
		if pass == nil {
			return false
		}
		return singleFloat(pass.Program.FuncResults(pass.File.AST.Name.Name, fn.Name))
	case *ast.SelectorExpr:
		if id, ok := fn.X.(*ast.Ident); ok {
			if mathName != "" && id.Name == mathName {
				return mathFloatFuncs[fn.Sel.Name]
			}
			if pass != nil && singleFloat(pass.Program.FuncResults(id.Name, fn.Sel.Name)) {
				return true
			}
		}
		if pass == nil {
			return false
		}
		return pass.Program.MethodAlwaysReturns(fn.Sel.Name, singleFloat)
	}
	return false
}
