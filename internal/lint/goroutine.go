package lint

import (
	"go/ast"
	"go/token"
)

// GoroutineCapture flags two goroutine bug classes that -race only catches
// when the schedule cooperates:
//
//   - a `go func(){...}` literal inside a loop that reads the loop
//     variable instead of taking it as an argument (the classic
//     internal/sweep bug class; per-iteration loop variables in Go 1.22
//     mask it, but the explicit form keeps intent obvious and survives
//     toolchain downgrades), and
//   - writes to a map declared outside the literal, with no Lock call
//     anywhere in the body to suggest synchronization.
var GoroutineCapture = &Analyzer{
	Name: "goroutine-capture",
	Doc:  "loop-variable capture and unsynchronized shared-map writes in go func literals",
	Run:  runGoroutineCapture,
}

// loopScope records one enclosing for/range statement: the variables it
// declares, its body extent, and same-name rebinds inside the body.
type loopScope struct {
	vars    map[string]bool
	rebound map[string]bool
	body    *ast.BlockStmt
}

func runGoroutineCapture(pass *Pass) {
	for _, decl := range pass.File.AST.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		loops := collectLoops(fd.Body)
		mapVars := collectMapVars(fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			checkLoopCapture(pass, gs, lit, loops)
			checkSharedMapWrites(pass, lit, mapVars)
			return true
		})
	}
}

// collectLoops gathers every for/range statement in body along with the
// variables its header declares and any `x := x` rebinds in its body.
func collectLoops(body *ast.BlockStmt) []loopScope {
	var loops []loopScope
	ast.Inspect(body, func(n ast.Node) bool {
		scope := loopScope{vars: make(map[string]bool), rebound: make(map[string]bool)}
		switch s := n.(type) {
		case *ast.RangeStmt:
			if s.Tok == token.DEFINE {
				for _, e := range []ast.Expr{s.Key, s.Value} {
					if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
						scope.vars[id.Name] = true
					}
				}
			}
			scope.body = s.Body
		case *ast.ForStmt:
			if init, ok := s.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, e := range init.Lhs {
					if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
						scope.vars[id.Name] = true
					}
				}
			}
			scope.body = s.Body
		default:
			return true
		}
		if len(scope.vars) == 0 {
			return true
		}
		// `v := v` inside the body rebinds the name per iteration; closures
		// then capture the copy, which is safe and not flagged.
		ast.Inspect(scope.body, func(m ast.Node) bool {
			as, ok := m.(*ast.AssignStmt)
			if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i := range as.Lhs {
				l, lok := as.Lhs[i].(*ast.Ident)
				r, rok := as.Rhs[i].(*ast.Ident)
				if lok && rok && l.Name == r.Name && scope.vars[l.Name] {
					scope.rebound[l.Name] = true
				}
			}
			return true
		})
		loops = append(loops, scope)
		return true
	})
	return loops
}

// checkLoopCapture reports loop variables read inside the go-literal body
// without being passed as arguments or rebound.
func checkLoopCapture(pass *Pass, gs *ast.GoStmt, lit *ast.FuncLit, loops []loopScope) {
	captured := make(map[string]bool)
	for _, scope := range loops {
		if gs.Pos() < scope.body.Pos() || gs.End() > scope.body.End() {
			continue
		}
		for name := range scope.vars {
			if !scope.rebound[name] {
				captured[name] = true
			}
		}
	}
	if len(captured) == 0 {
		return
	}
	for name := range declaredIn(lit) {
		delete(captured, name)
	}
	reported := make(map[string]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || !captured[id.Name] || reported[id.Name] {
			return true
		}
		reported[id.Name] = true
		pass.Report(id, "go func literal captures loop variable %q; pass it as an argument (go func(%s ...) {...}(%s))", id.Name, id.Name, id.Name)
		return true
	})
}

// checkSharedMapWrites reports writes (index assignment or delete) to maps
// declared outside the literal when nothing in the body takes a lock.
func checkSharedMapWrites(pass *Pass, lit *ast.FuncLit, mapVars map[string]bool) {
	if len(mapVars) == 0 {
		return
	}
	local := declaredIn(lit)
	locked := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && (sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock") {
			locked = true
		}
		return true
	})
	if locked {
		return
	}
	reportWrite := func(lhs ast.Expr) {
		ix, ok := lhs.(*ast.IndexExpr)
		if !ok {
			return
		}
		if id, ok := ix.X.(*ast.Ident); ok && mapVars[id.Name] && !local[id.Name] {
			pass.Report(ix, "write to shared map %q inside go func literal without synchronization; guard it with a mutex or use per-goroutine maps merged after Wait", id.Name)
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				reportWrite(lhs)
			}
		case *ast.IncDecStmt:
			reportWrite(s.X)
		case *ast.CallExpr:
			if fn, ok := s.Fun.(*ast.Ident); ok && fn.Name == "delete" && len(s.Args) > 0 {
				if id, ok := s.Args[0].(*ast.Ident); ok && mapVars[id.Name] && !local[id.Name] {
					pass.Report(s, "delete from shared map %q inside go func literal without synchronization", id.Name)
				}
			}
		}
		return true
	})
}

// collectMapVars finds names bound to syntactically map-typed values in
// body: explicit map var declarations, make(map[...]...), and map
// composite literals.
func collectMapVars(body *ast.BlockStmt) map[string]bool {
	vars := make(map[string]bool)
	isMapExpr := func(e ast.Expr) bool {
		switch x := e.(type) {
		case *ast.CallExpr:
			if fn, ok := x.Fun.(*ast.Ident); ok && fn.Name == "make" && len(x.Args) > 0 {
				_, isMap := x.Args[0].(*ast.MapType)
				return isMap
			}
		case *ast.CompositeLit:
			_, isMap := x.Type.(*ast.MapType)
			return isMap
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ValueSpec:
			if _, ok := s.Type.(*ast.MapType); ok {
				for _, name := range s.Names {
					vars[name.Name] = true
				}
			}
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && isMapExpr(s.Rhs[i]) {
					vars[id.Name] = true
				}
			}
		}
		return true
	})
	return vars
}

// declaredIn returns every name the literal declares itself: parameters
// and any := / var declarations in its body.
func declaredIn(lit *ast.FuncLit) map[string]bool {
	names := make(map[string]bool)
	if lit.Type.Params != nil {
		for _, field := range lit.Type.Params.List {
			for _, name := range field.Names {
				names[name.Name] = true
			}
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if s.Tok == token.DEFINE {
				for _, lhs := range s.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						names[id.Name] = true
					}
				}
			}
		case *ast.ValueSpec:
			for _, name := range s.Names {
				names[name.Name] = true
			}
		}
		return true
	})
	return names
}
