package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// LazyInit flags unsynchronized lazy-initialization (memoization) on
// types that are shared across goroutines: a pointer-receiver method that
// guards work behind a nil check (`if x.f == nil { x.f = ... }`) or a
// boolean memo flag (`if x.done { return }` … `x.done = true`) without a
// mutex or sync.Once, on a type that either carries a Freeze/share
// contract (it declares a Freeze method) or whose method is reachable
// from spawned goroutines.
//
// Two concurrent first calls both see the unset guard and both write —
// at best duplicated work, at worst a torn structure read mid-build.
// This is exactly the (*ipv4.Set).Select rank-index race: Select lazily
// built the rank table on first use, workers shared the set, and the
// race detector caught two builders interleaving. Initialize eagerly
// before sharing (Freeze), guard with sync.Once, or justify with
// `//lint:ignore lazyinit <reason>` citing the invariant that serializes
// the first call.
var LazyInit = &Analyzer{
	Name: "lazyinit",
	Doc:  "unsynchronized lazy initialization on types shared across goroutines (nil-guarded or memo-flag-guarded writes without mutex/Once)",
	Run:  runLazyInit,
}

func runLazyInit(pass *Pass) {
	for _, f := range pass.Program.lazyFindings()[pass.File] {
		pass.Report(f.node, "%s", f.msg)
	}
}

// lazyFindings computes (once) the whole-module lazy-init result.
func (prog *Program) lazyFindings() map[*File][]dtFinding {
	//lint:ignore lazyinit a Program is analyzed on a single goroutine; reprolint never shares one across workers
	if prog.lazyOnce {
		return prog.lazyRes
	}
	prog.lazyOnce = true
	prog.lazyRes = make(map[*File][]dtFinding)

	g := prog.CallGraph()
	goReach := g.GoReachable()

	// Types carrying a Freeze method: their instances are built, frozen,
	// then shared — so every lazy write on them is a latent race.
	frozen := make(map[*Package]map[string]bool)
	for _, n := range g.byName["Freeze"] {
		if tn := recvTypeName(n.Decl); tn != "" {
			if frozen[n.Pkg] == nil {
				frozen[n.Pkg] = make(map[string]bool)
			}
			frozen[n.Pkg][tn] = true
		}
	}

	for _, n := range g.sortedNodes() {
		tn := recvTypeName(n.Decl)
		if tn == "" {
			continue
		}
		var reason string
		switch {
		case frozen[n.Pkg][tn]:
			reason = tn + " declares Freeze, so instances are shared after construction"
		case goReach[n]:
			reason = "this method is reachable from spawned goroutines"
		default:
			continue
		}
		if synchronized(n.Decl.Body, n.Pkg) {
			continue
		}
		recv := recvName(n.Decl)
		if recv == "" {
			continue
		}
		for _, lz := range lazyGuards(n.Decl.Body, recv) {
			msg := fmt.Sprintf(
				"unsynchronized lazy initialization of %s.%s (%s); %s — two concurrent first calls race on the write: initialize eagerly before sharing or guard with sync.Once",
				tn, lz.field, lz.shape, reason)
			prog.lazyRes[n.File] = append(prog.lazyRes[n.File], dtFinding{node: lz.guard, msg: msg})
		}
	}
	return prog.lazyRes
}

// recvTypeName returns the bare receiver type name of a method
// declaration, or "".
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// recvName returns the receiver variable name, or "" when anonymous.
func recvName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	name := fd.Recv.List[0].Names[0].Name
	if name == "_" {
		return ""
	}
	return name
}

// synchronized reports whether body takes a lock or defers to a
// sync.Once before doing its work. Any .Lock/.RLock call counts; .Do
// counts when the callee is (or plausibly is) a sync.Once.
func synchronized(body *ast.BlockStmt, pkg *Package) bool {
	found := false
	ast.Inspect(body, func(nd ast.Node) bool {
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := unwrapFun(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock":
			found = true
		case "Do":
			if t := pkg.TypeOf(sel.X); t != nil {
				if named, ok := derefType(t).(*types.Named); ok {
					obj := named.Obj()
					found = found || (obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Once")
				}
			} else {
				found = true // no type info: assume a Once
			}
		}
		return !found
	})
	return found
}

// derefType strips one pointer.
func derefType(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// lazyGuard is one detected lazy-init pattern.
type lazyGuard struct {
	// guard is the if statement implementing the check.
	guard *ast.IfStmt
	// field is the receiver field being lazily initialized.
	field string
	// shape describes the pattern for the message.
	shape string
}

// lazyGuards finds the two memoization shapes on receiver fields:
//
//  1. nil guard:  if r.f == nil { r.f = ... }
//  2. memo flag:  if r.done { return }  …  r.done = true
//     (or the inverted  if !r.dirty { return }  …  r.dirty = false)
//
// Shape 2 only counts when the same function also writes the flag —
// otherwise it is an ordinary state check, not memoization.
func lazyGuards(body *ast.BlockStmt, recv string) []lazyGuard {
	var out []lazyGuard
	ast.Inspect(body, func(nd ast.Node) bool {
		ifs, ok := nd.(*ast.IfStmt)
		if !ok || ifs.Init != nil {
			return true
		}
		// Shape 1: if r.f == nil { … r.f = … }.
		if bin, ok := ifs.Cond.(*ast.BinaryExpr); ok && bin.Op == token.EQL {
			if field := recvField(bin.X, recv); field != "" && isNilIdent(bin.Y) {
				if writesField(ifs.Body, recv, field) {
					out = append(out, lazyGuard{guard: ifs, field: field, shape: "nil-guarded write"})
					return true
				}
			}
		}
		// Shape 2: if r.done { return } (possibly negated) with the flag
		// written elsewhere in the function.
		cond := ifs.Cond
		if un, ok := cond.(*ast.UnaryExpr); ok && un.Op == token.NOT {
			cond = un.X
		}
		if field := recvField(cond, recv); field != "" && isEarlyReturn(ifs.Body) {
			if writesField(body, recv, field) {
				out = append(out, lazyGuard{guard: ifs, field: field, shape: "memo-flag early return"})
			}
		}
		return true
	})
	return out
}

// recvField returns the field name when e is recv.<field>, else "".
func recvField(e ast.Expr, recv string) string {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if id, ok := sel.X.(*ast.Ident); ok && id.Name == recv {
		return sel.Sel.Name
	}
	return ""
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// isEarlyReturn reports whether a guard body just bails out.
func isEarlyReturn(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	for _, st := range body.List {
		switch st.(type) {
		case *ast.ReturnStmt, *ast.ExprStmt:
		default:
			return false
		}
	}
	_, ok := body.List[len(body.List)-1].(*ast.ReturnStmt)
	return ok
}

// writesField reports whether any statement under root assigns to
// recv.<field> (plain or compound assignment).
func writesField(root ast.Node, recv, field string) bool {
	found := false
	ast.Inspect(root, func(nd ast.Node) bool {
		as, ok := nd.(*ast.AssignStmt)
		if !ok {
			return !found
		}
		for _, lhs := range as.Lhs {
			if recvField(lhs, recv) == field {
				found = true
			}
		}
		return !found
	})
	return found
}
