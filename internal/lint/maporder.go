package lint

import (
	"go/ast"
)

// MapOrder is the local (intraprocedural) map-iteration-order rule: a
// `range` over a map — or a sync.Map Range callback — whose body appends
// to a slice, writes output, emits JSON, or sends on a channel leaks the
// map's randomized iteration order into observable state unless the
// collected entries are deterministically sorted afterwards.
//
// Unlike detrace this rule fires everywhere, not just under the
// determinism roots: ad-hoc diagnostics and CLI output drift across runs
// too, and the byte-identical-output contract covers the whole repo.
// Order-insensitive bodies (integer/boolean aggregation, per-key element
// writes, set building) pass; `//lint:deterministic <why>` on the range
// statement discharges the rest.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "map iteration whose order leaks into appends, output, JSON, or channel sends without a deterministic sort",
	Run:  runMapOrder,
}

// mapOrderKinds are the effect kinds this local rule reports. Float
// accumulation is included: FP addition is not associative, so summing in
// map order drifts in the low bits across runs — the exact failure mode
// the byte-identity contract exists to catch. The remaining kinds (calls
// with unknown effects, last-wins assignment) carry too little local
// evidence and are left to detrace, which only fires when a determinism
// root is actually reachable.
var mapOrderKinds = map[string]bool{
	"append": true, "output": true, "json": true, "send": true,
	"float-accum": true,
}

func runMapOrder(pass *Pass) {
	if pass.File.Test {
		return
	}
	// The rule keys on static types (what is a map, what accumulates
	// floats); build the typed layer before classifying.
	pass.Program.Check()
	for _, decl := range pass.File.AST.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(nd ast.Node) bool {
			switch s := nd.(type) {
			case *ast.RangeStmt:
				if !isMapRange(pass.Package, fd.Body, s) {
					return true
				}
				line := pass.Program.Fset.Position(s.Pos()).Line
				if pass.File.Deterministic(line) {
					return true
				}
				reportOrderIssues(pass, s, s.Body, rangeIterVars(s), fd.Body)
			case *ast.CallExpr:
				// sync.Map iteration: m.Range(func(k, v any) bool { ... }).
				sel, ok := unwrapFun(s.Fun).(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Range" || len(s.Args) != 1 {
					return true
				}
				t := pass.Package.TypeOf(sel.X)
				if t == nil || !isSyncMap(t) {
					return true
				}
				line := pass.Program.Fset.Position(s.Pos()).Line
				if pass.File.Deterministic(line) {
					return true
				}
				if lit, ok := s.Args[0].(*ast.FuncLit); ok {
					iterVars := make(map[string]bool)
					for _, f := range lit.Type.Params.List {
						for _, name := range f.Names {
							if name.Name != "_" {
								iterVars[name.Name] = true
							}
						}
					}
					reportOrderIssues(pass, s, lit.Body, iterVars, fd.Body)
				}
			}
			return true
		})
	}
}

// reportOrderIssues classifies one iteration body and reports the
// order-dependent effects this rule owns.
func reportOrderIssues(pass *Pass, at ast.Node, body *ast.BlockStmt, iterVars map[string]bool, encl *ast.BlockStmt) {
	for _, issue := range mapRangeIssues(pass.Package, body, iterVars, at.End(), encl) {
		if !mapOrderKinds[issue.kind] {
			continue
		}
		pass.Report(issue.node, "map iteration order leaks: %s (sort the keys first, or annotate //lint:deterministic <why>)", issue.msg)
	}
}
