package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches the golden annotations used throughout testdata:
// a trailing `// want "substring"` on the line a finding must land on.
var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

// fixtureWants reads every fixture file under root and collects its want
// annotations keyed by (path, line).
type wantKey struct {
	path string
	line int
}

func fixtureWants(t *testing.T, root string) map[wantKey]string {
	t.Helper()
	wants := make(map[wantKey]string)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			if m := wantRe.FindStringSubmatch(line); m != nil {
				wants[wantKey{path: path, line: i + 1}] = m[1]
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

// runFixture runs one analyzer over its golden tree and checks the
// findings against the want annotations, both directions: every want must
// fire and every finding must be wanted.
func runFixture(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	root := filepath.Join("testdata", dir)
	prog, err := LoadAt(root, root)
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(prog, []*Analyzer{a})
	wants := fixtureWants(t, root)
	matched := make(map[wantKey]bool)
	for _, f := range findings {
		key := wantKey{path: f.Pos.Filename, line: f.Pos.Line}
		want, ok := wants[key]
		if !ok {
			t.Errorf("unexpected finding: %s", f)
			continue
		}
		if !strings.Contains(f.Message, want) {
			t.Errorf("%s:%d: message %q does not contain %q", key.path, key.line, f.Message, want)
		}
		matched[key] = true
	}
	for key, want := range wants {
		if !matched[key] {
			t.Errorf("%s:%d: expected finding containing %q, got none", key.path, key.line, want)
		}
	}
}

func TestBannedImportFixture(t *testing.T)     { runFixture(t, BannedImport, "bannedimport") }
func TestNoWallclockFixture(t *testing.T)      { runFixture(t, NoWallclock, "wallclock") }
func TestFloatEqFixture(t *testing.T)          { runFixture(t, FloatEq, "floateq") }
func TestGoroutineCaptureFixture(t *testing.T) { runFixture(t, GoroutineCapture, "goroutine") }
func TestUncheckedErrorFixture(t *testing.T)   { runFixture(t, UncheckedError, "uncheckederr") }
func TestSeedLiteralFixture(t *testing.T)      { runFixture(t, SeedLiteral, "seedliteral") }
func TestDeTraceFixture(t *testing.T)          { runFixture(t, DeTrace, "detrace") }
func TestLazyInitFixture(t *testing.T)         { runFixture(t, LazyInit, "lazyinit") }
func TestMapOrderFixture(t *testing.T)         { runFixture(t, MapOrder, "maporder") }

// TestMalformedIgnoreReported pins the justification requirement: an
// ignore directive without a reason is itself a finding.
func TestMalformedIgnoreReported(t *testing.T) {
	dir := t.TempDir()
	src := `package p

func zero(total float64) bool {
	//lint:ignore float-eq
	return total == 0
}
`
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	prog, err := LoadAt(dir, dir)
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(prog, []*Analyzer{FloatEq})
	var rules []string
	for _, f := range findings {
		rules = append(rules, f.Rule)
	}
	// The reasonless directive must not suppress, and must be reported.
	if len(findings) != 2 || rules[0] != "lint-ignore" || rules[1] != "float-eq" {
		t.Fatalf("findings = %v, want [lint-ignore float-eq]", findings)
	}
	if !strings.Contains(findings[0].Message, "want //lint:ignore <rule> <reason>") {
		t.Errorf("malformed-directive message = %q", findings[0].Message)
	}
}

// TestByName covers rule lookup used by the reprolint -rules flag.
func TestByName(t *testing.T) {
	for _, a := range Analyzers() {
		if got := ByName(a.Name); got != a {
			t.Errorf("ByName(%q) = %v", a.Name, got)
		}
	}
	if ByName("no-such-rule") != nil {
		t.Error("ByName accepted an unknown rule")
	}
}

// TestFindingString pins the output format cmd/reprolint prints and
// scripts grep for.
func TestFindingString(t *testing.T) {
	prog, err := LoadAt(filepath.Join("testdata", "floateq"), filepath.Join("testdata", "floateq"))
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(prog, []*Analyzer{FloatEq})
	if len(findings) == 0 {
		t.Fatal("no findings in floateq fixture")
	}
	got := findings[0].String()
	re := regexp.MustCompile(`^\S+\.go:\d+: float-eq: .+$`)
	if !re.MatchString(got) {
		t.Errorf("String() = %q, want file:line: rule: message", got)
	}
}
