package experiments

import (
	"fmt"

	"repro/internal/botcmd"
)

// Table1Config parameterizes the bot-command capture study.
type Table1Config struct {
	// Capture generation; see botcmd.GeneratorConfig.
	Generator botcmd.GeneratorConfig
}

// DefaultTable1 reproduces the paper's scale: ≈11 bots over a month on a
// live /15 academic network.
func DefaultTable1(seed uint64) Table1Config {
	return Table1Config{Generator: botcmd.DefaultGenerator(seed)}
}

// RunTable1 generates a synthetic C&C capture, extracts the propagation
// commands exactly as the paper's signature matching did, and tabulates
// them with their hit-lists — Table 1.
func RunTable1(cfg Table1Config) (*Result, error) {
	capture := botcmd.Generate(cfg.Generator)
	cmds := botcmd.ExtractCommands(capture)

	table := Table{
		ID:      "Table 1",
		Title:   "Botnet scan commands captured on a live academic network",
		Columns: []string{"Bot Propagation Command", "Family", "Exploit", "Hit-List"},
	}
	var targeted int
	for _, c := range cmds {
		hl := c.HitList()
		hlStr := "unrestricted"
		if hl.Bits() > 0 {
			hlStr = hl.String()
			targeted++
		}
		table.Rows = append(table.Rows, []string{c.Raw, c.Family.String(), c.Exploit, hlStr})
	}

	res := &Result{Tables: []Table{table}}
	agg := botcmd.AggregateHitLists(cmds)
	res.Notef("capture lines: %d, propagation commands: %d, targeted (hit-list) commands: %d",
		len(capture), len(cmds), targeted)
	res.Notef("aggregate hit-list space: %s (%d addresses, %.4f%% of IPv4)",
		agg, agg.Size(), 100*float64(agg.Size())/float64(uint64(1)<<32))
	if targeted == 0 {
		return res, fmt.Errorf("experiments: capture contained no targeted commands")
	}
	res.Notef("hit-lists restrict propagation to specific subnets: the algorithmic factor behind bot hotspots")
	return res, nil
}
