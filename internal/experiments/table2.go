package experiments

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/netenv"
	"repro/internal/rng"
	"repro/internal/sensor"
)

// Table2Config parameterizes the enterprise-vs-ISP filtering study.
type Table2Config struct {
	// Orgs generates the synthetic organization universe.
	Orgs netenv.OrgModelConfig
	// ObservationProbes is the number of probes a persistently infected
	// host emits over the measurement window (the paper observed for more
	// than a month; a month at 10 probes/s is ≈2.6e7).
	ObservationProbes float64
	// EnterpriseBlockProb is the probability a given enterprise's egress
	// policy hard-blocks a given worm's port outright (the dominant
	// real-world mechanism: port filtering, not per-packet loss).
	EnterpriseBlockProb float64
	// Seed drives all randomness.
	Seed uint64
}

// DefaultTable2 returns the configuration used for the Table 2
// reproduction.
func DefaultTable2(seed uint64) Table2Config {
	return Table2Config{
		Orgs:                netenv.DefaultOrgModel(seed),
		ObservationProbes:   2.6e7,
		EnterpriseBlockProb: 0.95,
		Seed:                seed,
	}
}

// table2Worm describes one studied worm for the filtering study: the
// probability an infected host is observed at least once by the IMS
// darknets over the window (set by its propagation algorithm and the
// monitored coverage), and the relative infected density of its vulnerable
// population (SQL servers are far rarer than unpatched desktops).
type table2Worm struct {
	name    string
	pVis    float64
	density float64
}

func table2Worms(probes float64, coverage uint64) []table2Worm {
	covFrac := float64(coverage) / float64(uint64(1)<<32)
	return []table2Worm{
		// CodeRedII reaches distant darknets only through its 1/8
		// completely-random branch; IIS servers are moderately common.
		{name: "CRII", pVis: 1 - math.Exp(-probes*0.125*covFrac), density: 1.0},
		// Slammer's surviving (long-cycle) hosts are effectively uniform
		// scanners, but vulnerable SQL Server instances are scarce.
		{name: "Slammer", pVis: 1 - math.Exp(-probes*covFrac), density: 0.12},
		// Blaster scans one sequential window of `probes` addresses: it is
		// seen only if that window overlaps a monitored block; unpatched
		// Windows desktops are everywhere.
		{name: "Blaster", pVis: math.Min(1,
			(float64(len(sensor.DefaultIMSBlocks()))*probes+float64(coverage))/float64(uint64(1)<<32)),
			density: 1.6},
	}
}

// RunTable2 reproduces Table 2: for the top enterprises and broadband ISPs
// by allocation size, the number of infected hosts visible to the IMS for
// each worm. Enterprises sit behind egress filtering; ISPs do not.
func RunTable2(cfg Table2Config) (*Result, error) {
	if cfg.ObservationProbes <= 0 {
		return nil, errors.New("experiments: non-positive observation window")
	}
	r := rng.NewXoshiro(cfg.Seed)
	orgs := netenv.SynthesizeOrgs(cfg.Orgs)

	coverage := sensor.MustNewFleet(sensor.DefaultIMSBlocks()).CoverageSet().Size()
	worms := table2Worms(cfg.ObservationProbes, coverage)

	var rows []orgResult
	for _, org := range orgs {
		detected := make([]uint64, len(worms))
		for wi, w := range worms {
			nInfected := r.Binomial(org.TotalAddrs(), org.InfectionDensity*w.density)
			if org.Kind == netenv.Enterprise && r.Bernoulli(cfg.EnterpriseBlockProb) {
				// Hard egress block on this worm's port: nothing leaks.
				detected[wi] = 0
				continue
			}
			// Per-probe soft filtering attenuates the per-host visibility.
			pVis := w.pVis
			if org.EgressDrop > 0 && org.EgressDrop < 1 {
				pVis = 1 - math.Exp(math.Log1p(-pVis)*(1-org.EgressDrop))
			}
			detected[wi] = r.Binomial(nInfected, pVis)
		}
		rows = append(rows, orgResult{org: org, detected: detected})
	}

	// The paper lists the top 3 of each kind by allocation size.
	table := Table{
		ID:      "Table 2",
		Title:   "Worm infections visible to the IMS from top enterprises and broadband ISPs",
		Columns: []string{"Organization", "Kind", "Total IPs", "CRII IPs", "Slammer IPs", "Blaster IPs"},
	}
	var entVisible, ispVisible uint64
	for _, kind := range []netenv.OrgKind{netenv.Enterprise, netenv.BroadbandISP} {
		shown := 0
		for _, rw := range topByAllocation(rows, kind) {
			if shown == 3 {
				break
			}
			shown++
			table.Rows = append(table.Rows, []string{
				rw.org.Name, rw.org.Kind.String(),
				fmt.Sprintf("%d", rw.org.TotalAddrs()),
				fmt.Sprintf("%d", rw.detected[0]),
				fmt.Sprintf("%d", rw.detected[1]),
				fmt.Sprintf("%d", rw.detected[2]),
			})
		}
		for _, rw := range rows {
			if rw.org.Kind != kind {
				continue
			}
			for _, d := range rw.detected {
				if kind == netenv.Enterprise {
					entVisible += d
				} else {
					ispVisible += d
				}
			}
		}
	}

	res := &Result{Tables: []Table{table}}
	res.SetMetric("enterprise_visible", float64(entVisible))
	res.SetMetric("isp_visible", float64(ispVisible))
	res.Notef("total visible infections — enterprises: %d, broadband ISPs: %d", entVisible, ispVisible)
	if ispVisible == 0 {
		return res, errors.New("experiments: ISPs leaked no infections; model broken")
	}
	res.Notef("visibility ratio ISP/enterprise: %.1fx — egress filtering is an environmental factor producing hotspots",
		float64(ispVisible)/math.Max(1, float64(entVisible)))
	return res, nil
}

// orgResult pairs an organization with its per-worm visible-infection
// counts.
type orgResult struct {
	org      netenv.Org
	detected []uint64
}

func topByAllocation(rows []orgResult, kind netenv.OrgKind) []orgResult {
	var filtered []orgResult
	for _, r := range rows {
		if r.org.Kind == kind {
			filtered = append(filtered, r)
		}
	}
	for i := 0; i < len(filtered); i++ {
		for j := i + 1; j < len(filtered); j++ {
			if filtered[j].org.TotalAddrs() > filtered[i].org.TotalAddrs() {
				filtered[i], filtered[j] = filtered[j], filtered[i]
			}
		}
	}
	return filtered
}
