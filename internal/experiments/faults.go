package experiments

// ext-faults: Section 5's detection results assume a perfectly healthy
// measurement apparatus — every sensor up, every probe either delivered or
// uniformly lost, every report instant. This extension re-runs the Fig 5b
// setting under a deterministic fault plan (internal/faults) and sweeps the
// damage: what fraction of the detector fleet can be withdrawn, and how
// much bursty loss the network can add, before the first alarm slips away?

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/detect"
	"repro/internal/faults"
	"repro/internal/ipv4"
	"repro/internal/obs"
	"repro/internal/population"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/worm"
)

// ExtFaultsConfig parameterizes the fault-injection sweep.
type ExtFaultsConfig struct {
	// Fig5 carries the population and outbreak parameters.
	Fig5 Fig5Config
	// HitListSize fixes the worm's list length.
	HitListSize int
	// OutageFractions are the detector-fleet fractions withdrawn for the
	// whole run, swept as the X axis. Withdrawal is nested: the withdrawn
	// detectors are a prefix of one seed-pinned shuffle of the fleet, so a
	// larger fraction removes a superset of what a smaller one removes and
	// degradation is monotone by construction, not by luck.
	OutageFractions []float64
	// BurstLosses are the Gilbert–Elliott bad-state loss probabilities,
	// one series per value; 0 disables the burst channel for that series.
	BurstLosses []float64
	// BurstMeanGood and BurstMeanBad are the channel dwell means (seconds).
	BurstMeanGood float64
	BurstMeanBad  float64
	// QuorumFraction is the alert quorum evaluated both naively (over the
	// whole fleet) and degraded (renormalized over in-service detectors).
	QuorumFraction float64
	// Sweep tunes the resilient pool the grid runs on (retries, deadlines,
	// salvage); the zero value is the plain fail-fast pool.
	Sweep sweep.Options
	// Checkpoint, when non-nil, persists each completed grid point so an
	// interrupted sweep resumes without recomputing finished points.
	Checkpoint *sweep.Checkpoint
}

// DefaultExtFaults uses the paper's 1000-prefix hit-list regime (the Fig 5b
// case where ~20% of sensors alert) and degrades it.
func DefaultExtFaults(seed uint64) ExtFaultsConfig {
	return ExtFaultsConfig{
		Fig5:            DefaultFig5(seed),
		HitListSize:     1000,
		OutageFractions: []float64{0, 0.2, 0.4, 0.6},
		BurstLosses:     []float64{0, 0.5},
		BurstMeanGood:   30,
		BurstMeanBad:    10,
		QuorumFraction:  0.15,
	}
}

// extFaultsPoint is one grid point of the sweep.
type extFaultsPoint struct {
	Burst  float64
	Outage float64
}

func (p extFaultsPoint) label() string {
	return fmt.Sprintf("burst=%g outage=%g", p.Burst, p.Outage)
}

// extFaultsOutcome is one completed grid point. Fields are exported and
// JSON-tagged because outcomes round-trip through the sweep checkpoint.
type extFaultsOutcome struct {
	Burst          float64 `json:"burst"`
	Outage         float64 `json:"outage"`
	DownBlocks     int     `json:"down_blocks"`
	NumUp          int     `json:"num_up"`
	FirstAlarm     float64 `json:"first_alarm"` // -1: no detector ever alerted
	Infected       float64 `json:"infected"`
	Alerted        float64 `json:"alerted"`    // over the whole fleet (naive)
	AlertedUp      float64 `json:"alerted_up"` // over in-service detectors
	QuorumNaive    bool    `json:"quorum_naive"`
	QuorumDegraded bool    `json:"quorum_degraded"`
}

// RunExtFaults sweeps outage fraction × burst loss over the Fig 5b
// detection setting. Every grid point replays the same outbreak (same
// simulation seed; fault-plan queries consume no simulation randomness and
// the fast driver draws sensor landings before checking their block's
// posture), so within one burst level the hit sequence each detector sees
// is pointwise dominated as the outage fraction grows: the first alarm can
// only hold or slip later, never improve. The grid runs on the resilient
// sweep pool and checkpoints per point when cfg.Checkpoint is set.
func RunExtFaults(cfg ExtFaultsConfig) (*Result, error) {
	if len(cfg.OutageFractions) == 0 || len(cfg.BurstLosses) == 0 {
		return nil, errors.New("experiments: empty fault grid")
	}
	for _, f := range cfg.OutageFractions {
		if f < 0 || f > 1 {
			return nil, fmt.Errorf("experiments: outage fraction %v outside [0,1]", f)
		}
	}
	for _, b := range cfg.BurstLosses {
		if b < 0 || b > 1 {
			return nil, fmt.Errorf("experiments: burst loss %v outside [0,1]", b)
		}
		if b > 0 && (cfg.BurstMeanGood <= 0 || cfg.BurstMeanBad <= 0) {
			return nil, errors.New("experiments: burst losses need positive dwell means")
		}
	}
	pop, err := population.Synthesize(cfg.Fig5.Pop)
	if err != nil {
		return nil, err
	}
	prefixes, cover := worm.BuildGreedySlash16HitList(pop.Addrs(false), cfg.HitListSize)
	set := ipv4.SetOfPrefixes(prefixes...)
	var slash16s []uint32
	for _, sc := range pop.Slash16Histogram() {
		slash16s = append(slash16s, sc.Network)
	}
	placements := detect.OnePerSlash16(slash16s, cfg.Fig5.Seed+3)

	// One seed-pinned shuffle of the fleet; fraction f withdraws its first
	// ⌈f·N⌉ detectors, so selections nest across the sweep.
	orderRNG := rng.NewXoshiro(rng.Mix64(cfg.Fig5.Seed ^ 0x6f7574616765)) // "outage"
	order := orderRNG.SampleWithoutReplacement(len(placements), len(placements))

	var grid []extFaultsPoint
	for _, b := range cfg.BurstLosses {
		for _, f := range cfg.OutageFractions {
			grid = append(grid, extFaultsPoint{Burst: b, Outage: f})
		}
	}

	var done atomic.Int64
	run := func(_ context.Context, pt extFaultsPoint) (extFaultsOutcome, error) {
		// The last tick lands exactly on MaxSeconds; pad the horizon so a
		// "whole run" window covers it (spans are half-open).
		horizon := cfg.Fig5.MaxSeconds + 1
		n := int(pt.Outage*float64(len(placements)) + 0.5)
		fcfg := faults.Config{Seed: cfg.Fig5.Seed + 41}
		for _, idx := range order[:n] {
			fcfg.Outages = append(fcfg.Outages, faults.OutageConfig{
				Block: placements[idx].String(),
				Start: 0,
				End:   horizon,
			})
		}
		if pt.Burst > 0 {
			fcfg.Burst = &faults.BurstConfig{
				MeanGood: cfg.BurstMeanGood,
				MeanBad:  cfg.BurstMeanBad,
				LossGood: 0,
				LossBad:  pt.Burst,
			}
		}
		plan, err := faults.Compile(fcfg, horizon)
		if err != nil {
			return extFaultsOutcome{}, err
		}
		fleet, err := detect.NewThresholdFleet(placements, cfg.Fig5.AlertThreshold)
		if err != nil {
			return extFaultsOutcome{}, err
		}
		fleet.SetDownSet(plan.DownSpace())
		first := -1.0
		// Grid points run concurrently against one recorder; scoping stamps
		// each point's events with its label so the interleaved dump stays
		// attributable (per-point content is deterministic, cross-point
		// interleaving follows completion order).
		rec := cfg.Fig5.Trace.Scoped("ext-faults " + pt.label())
		clk := &obs.SimClock{}
		if rec != nil {
			fleet.Trace(rec, clk)
		}
		res, err := sim.RunFast(sim.FastConfig{
			Pop:         pop,
			Model:       &sim.HitListModel{List: set},
			ScanRate:    cfg.Fig5.ScanRate,
			TickSeconds: 1,
			MaxSeconds:  cfg.Fig5.MaxSeconds,
			SeedHosts:   cfg.Fig5.SeedHosts,
			// Same outbreak at every grid point: only the apparatus varies.
			Seed:      cfg.Fig5.Seed + 31,
			Sensors:   fleet,
			SensorSet: fleet.Union(),
			Faults:    plan,
			Metrics:   cfg.Fig5.Metrics,
			Trace:     rec,
			Clock:     clk,
			// Grid points run concurrently against one registry; both knobs
			// are needed to keep each point's series distinct.
			MetricLabels: []string{
				"burst", fmt.Sprintf("%g", pt.Burst), "outage", fmt.Sprintf("%g", pt.Outage),
			},
			OnTick: func(ti sim.TickInfo) bool {
				if first < 0 && fleet.NumAlerted() > 0 {
					first = ti.Time
				}
				return true
			},
		})
		if err != nil {
			return extFaultsOutcome{}, err
		}
		cfg.Fig5.progress(int(done.Add(1)), len(grid))
		return extFaultsOutcome{
			Burst:          pt.Burst,
			Outage:         pt.Outage,
			DownBlocks:     n,
			NumUp:          fleet.NumUp(),
			FirstAlarm:     first,
			Infected:       res.FractionInfected(),
			Alerted:        fleet.AlertedFraction(),
			AlertedUp:      fleet.AlertedFractionOfUp(),
			QuorumNaive:    detect.QuorumReached(fleet, cfg.QuorumFraction),
			QuorumDegraded: detect.QuorumReachedDegraded(fleet, cfg.QuorumFraction),
		}, nil
	}

	opts := cfg.Sweep
	if opts.TaskLabel == nil {
		opts.TaskLabel = func(i int) string { return grid[i].label() }
	}
	key := func(_ int, pt extFaultsPoint) string {
		return fmt.Sprintf("ext-faults|seed=%d|pop=%d|hl=%d|rate=%g|T=%g|thr=%d|burst=%g|outage=%g",
			cfg.Fig5.Seed, cfg.Fig5.Pop.Size, cfg.HitListSize, cfg.Fig5.ScanRate,
			cfg.Fig5.MaxSeconds, cfg.Fig5.AlertThreshold, pt.Burst, pt.Outage)
	}
	outcomes, err := sweep.MapCheckpointed(cfg.Fig5.ctx(), grid, key, run, cfg.Checkpoint, opts)
	if err != nil {
		return nil, err
	}

	res := &Result{}
	table := Table{
		ID:    "Extension: fault injection",
		Title: fmt.Sprintf("Detection under sensor outages and bursty loss (%d-prefix hit-list covering %.1f%%)", cfg.HitListSize, 100*cover),
		Columns: []string{
			"Burst loss", "Outage", "Down/Up", "First alarm s",
			"% alerted", "% alerted of up", fmt.Sprintf("Quorum(%.0f%%) naive/degraded", 100*cfg.QuorumFraction),
			"% infected",
		},
	}
	fig := Figure{
		ID:     "Extension: fault injection",
		Title:  "First alarm vs fleet outage fraction (one series per burst-loss level)",
		XLabel: "fleet fraction withdrawn",
		YLabel: "first alarm (seconds; horizon = never)",
	}
	for _, b := range cfg.BurstLosses {
		series := Series{Name: fmt.Sprintf("burst loss %g", b)}
		for _, o := range outcomes {
			if o.Burst != b {
				continue
			}
			alarm := o.FirstAlarm
			if alarm < 0 {
				alarm = cfg.Fig5.MaxSeconds // never: plot at the horizon
			}
			series.X = append(series.X, o.Outage)
			series.Y = append(series.Y, alarm)
			firstCell := "never"
			if o.FirstAlarm >= 0 {
				firstCell = fmt.Sprintf("%.0f", o.FirstAlarm)
			}
			table.Rows = append(table.Rows, []string{
				fmt.Sprintf("%g", o.Burst),
				fmt.Sprintf("%.0f%%", 100*o.Outage),
				fmt.Sprintf("%d/%d", o.DownBlocks, o.NumUp),
				firstCell,
				fmt.Sprintf("%.1f", 100*o.Alerted),
				fmt.Sprintf("%.1f", 100*o.AlertedUp),
				fmt.Sprintf("%v/%v", o.QuorumNaive, o.QuorumDegraded),
				fmt.Sprintf("%.1f", 100*o.Infected),
			})
			pfx := fmt.Sprintf("ext-faults.burst%g.outage%g.", o.Burst, o.Outage)
			res.SetMetric(pfx+"first_alarm", o.FirstAlarm)
			res.SetMetric(pfx+"alerted", o.Alerted)
			res.SetMetric(pfx+"alerted_up", o.AlertedUp)
			res.SetMetric(pfx+"infected", o.Infected)
			res.SetMetric(pfx+"quorum_naive", boolMetric(o.QuorumNaive))
			res.SetMetric(pfx+"quorum_degraded", boolMetric(o.QuorumDegraded))
		}
		fig.Series = append(fig.Series, series)
	}
	res.Tables = append(res.Tables, table)
	res.Figures = append(res.Figures, fig)
	res.Notef("withdrawals nest across the sweep, so within a burst level the first alarm is monotone non-decreasing in the outage fraction")
	res.Notef("the degraded quorum (renormalized over in-service detectors) recovers what the naive quorum silently loses by counting dead sensors as 'not alerted'")
	return res, nil
}

// boolMetric renders a bool as a 0/1 metric.
func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
