package experiments

import (
	"fmt"
	"math"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
	"repro/internal/sweep"
)

// extFaultsTestConfig is a reduced quick-scale grid shared by the tests.
func extFaultsTestConfig(seed uint64) ExtFaultsConfig {
	cfg := DefaultExtFaults(seed)
	quickFig5(&cfg.Fig5, seed)
	cfg.HitListSize = 200
	cfg.OutageFractions = []float64{0, 0.3, 0.6}
	cfg.BurstLosses = []float64{0, 0.5}
	return cfg
}

func renderResult(t *testing.T, res *Result) string {
	t.Helper()
	var b strings.Builder
	if err := WriteMarkdown(&b, "ext-faults", res); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestExtFaultsMonotoneFirstAlarm is the acceptance check: within each
// burst-loss level, withdrawing a larger (nested) fraction of the fleet can
// only delay the first alarm, and the naive alerted fraction can only fall.
func TestExtFaultsMonotoneFirstAlarm(t *testing.T) {
	cfg := extFaultsTestConfig(26)
	res, err := RunExtFaults(cfg)
	if err != nil {
		t.Fatal(err)
	}
	alarmOf := func(b, f float64) float64 {
		a := res.Metric(fmt.Sprintf("ext-faults.burst%g.outage%g.first_alarm", b, f))
		if a < 0 {
			return math.Inf(1) // never alerted: later than any time
		}
		return a
	}
	for _, b := range cfg.BurstLosses {
		if healthy := alarmOf(b, 0); math.IsInf(healthy, 1) {
			t.Errorf("burst %g: healthy fleet never alarmed", b)
		}
		prevAlarm, prevAlerted := 0.0, 1.0
		for _, f := range cfg.OutageFractions {
			alarm := alarmOf(b, f)
			if alarm < prevAlarm {
				t.Errorf("burst %g: first alarm improved from %.0fs to %.0fs as outage rose to %g",
					b, prevAlarm, alarm, f)
			}
			prevAlarm = alarm
			alerted := res.Metric(fmt.Sprintf("ext-faults.burst%g.outage%g.alerted", b, f))
			if alerted > prevAlerted+1e-9 {
				t.Errorf("burst %g: alerted fraction rose to %.3f as outage rose to %g", b, alerted, f)
			}
			prevAlerted = alerted
			// Whole-run withdrawals never alert, so renormalizing over the
			// in-service detectors can only help.
			alertedUp := res.Metric(fmt.Sprintf("ext-faults.burst%g.outage%g.alerted_up", b, f))
			if alertedUp+1e-9 < alerted {
				t.Errorf("burst %g outage %g: alerted-of-up %.3f below naive %.3f", b, f, alertedUp, alerted)
			}
		}
	}
	if len(res.Figures) != 1 || len(res.Figures[0].Series) != len(cfg.BurstLosses) {
		t.Errorf("figure shape wrong: %+v", res.Figures)
	}
	if len(res.Tables) != 1 || len(res.Tables[0].Rows) != len(cfg.BurstLosses)*len(cfg.OutageFractions) {
		t.Errorf("table shape wrong: %d rows", len(res.Tables[0].Rows))
	}
}

// TestExtFaultsCheckpointResumeByteIdentical proves the experiment-level
// resume contract: a sweep checkpointed over a partial grid and resumed
// over the full grid re-runs only the missing points and renders byte for
// byte what an uninterrupted, checkpoint-free run renders — with telemetry
// attached to the resumed run to confirm it stays inert.
func TestExtFaultsCheckpointResumeByteIdentical(t *testing.T) {
	base := extFaultsTestConfig(27)
	base.BurstLosses = []float64{0.5}

	clean := base
	cleanRes, err := RunExtFaults(clean)
	if err != nil {
		t.Fatal(err)
	}
	want := renderResult(t, cleanRes)

	// First (interrupted) pass: only the grid's endpoints complete.
	path := filepath.Join(t.TempDir(), "ext-faults.ckpt")
	cp, err := sweep.OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	partial := base
	partial.OutageFractions = []float64{0, 0.6}
	partial.Checkpoint = cp
	if _, err := RunExtFaults(partial); err != nil {
		t.Fatal(err)
	}
	if cp.Len() != 2 {
		t.Fatalf("checkpoint holds %d points, want 2", cp.Len())
	}

	// Resume the full grid from the file a fresh process would open.
	resumedCP, err := sweep.OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int64
	resumed := base
	resumed.Checkpoint = resumedCP
	resumed.Fig5.OnProgress = func(done, total int) { ran.Add(1) }
	resumed.Fig5.Metrics = obs.NewRegistry()
	resumedRes, err := RunExtFaults(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if got := ran.Load(); got != 1 {
		t.Errorf("resume simulated %d points, want 1 (cached points must not rerun)", got)
	}
	if got := renderResult(t, resumedRes); got != want {
		t.Errorf("resumed run diverged from the uninterrupted one:\n--- resumed\n%s--- clean\n%s", got, want)
	}
}

func TestExtFaultsValidation(t *testing.T) {
	if _, err := RunExtFaults(ExtFaultsConfig{}); err == nil {
		t.Error("empty fault grid accepted")
	}
	bad := extFaultsTestConfig(1)
	bad.OutageFractions = []float64{1.5}
	if _, err := RunExtFaults(bad); err == nil {
		t.Error("outage fraction 1.5 accepted")
	}
	bad = extFaultsTestConfig(1)
	bad.BurstLosses = []float64{0.5}
	bad.BurstMeanGood = 0
	if _, err := RunExtFaults(bad); err == nil {
		t.Error("burst loss without dwell means accepted")
	}
}
