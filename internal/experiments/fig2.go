package experiments

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sort"

	"repro/internal/core"
	"repro/internal/cycle"
	"repro/internal/rng"
	"repro/internal/sensor"
	"repro/internal/worm"
)

// Fig2Config parameterizes the Slammer aggregate study.
type Fig2Config struct {
	// Hosts is the number of infected Slammer sources, each seeded
	// uniformly at random in the LCG's 32-bit state space.
	Hosts int
	// Variant selects the sqlsort.dll increment (0, 1 or 2).
	Variant int
	// WindowProbes is how many probes each host emits over the
	// measurement window.
	WindowProbes uint64
	// Blocks are the monitored darknets; BlockedLabels are blocks whose
	// upstream filters the worm (the paper's M block saw zero Slammer).
	Blocks        []sensor.Block
	BlockedLabels []string
	// ClusteredSeedFraction is the share of hosts whose initial LCG state
	// is drawn from a small pool of "popular" seeds rather than uniformly.
	// Slammer derived its state from low-entropy host context, so many
	// hosts entered the same cycles; this is what turns the per-host cycle
	// structure into the aggregate per-/24 non-uniformity of Figure 2.
	// (With uniform seeds the affine orbit structure provably yields
	// uniform expected counts — every orbit is an arithmetic progression.)
	ClusteredSeedFraction float64
	// ClusteredSeedPool is the number of popular seeds (default 256).
	ClusteredSeedPool int
	// Seed drives all randomness.
	Seed uint64
}

// DefaultFig2 returns the Figure 2 configuration: a population comparable
// to the paper's surviving Slammer hosts observed over a month.
func DefaultFig2(seed uint64) Fig2Config {
	return Fig2Config{
		Hosts:                 75000,
		Variant:               1, // the increment the paper prints (0x8831fa24)
		WindowProbes:          26e6,
		Blocks:                sensor.DefaultIMSBlocks(),
		BlockedLabels:         []string{"M"},
		ClusteredSeedFraction: 0.3,
		ClusteredSeedPool:     256,
		Seed:                  seed,
	}
}

// RunFig2 reproduces Figure 2: unique Slammer source counts per destination
// /24 across the IMS blocks, driven entirely by the LCG's exact cycle
// structure, plus the per-block cycle-mass prediction (the paper's
// 42.67 / 29.33 / 42.67 analysis).
//
// Method (exact where it matters, aggregated where it provably doesn't):
// cycles no longer than the window are enumerated state-by-state — their
// hosts wrap and revisit exactly the cycle's addresses. Hosts on longer
// cycles cover a window-sized equidistributed sample of the space, so their
// per-/24 contributions are Binomial/Poisson draws with the exact rates.
func RunFig2(cfg Fig2Config) (*Result, error) {
	if cfg.Hosts <= 0 || cfg.WindowProbes == 0 {
		return nil, errors.New("experiments: fig2 needs hosts and a window")
	}
	if cfg.Variant < 0 || cfg.Variant > 2 {
		return nil, errors.New("experiments: fig2 variant out of range")
	}
	bi, err := newBlockIndex(cfg.Blocks)
	if err != nil {
		return nil, err
	}
	r := rng.NewXoshiro(cfg.Seed)
	m := worm.SlammerMap(cfg.Variant)

	// shortLimit is the largest power-of-two cycle length a host can cover
	// completely within the window.
	shortLimit := uint64(1) << uint(bits.Len64(cfg.WindowProbes)-1)

	unique := make([][]float64, len(cfg.Blocks))
	attempts := make([][]float64, len(cfg.Blocks))
	for i := range unique {
		unique[i] = make([]float64, bi.slots[i])
		attempts[i] = make([]float64, bi.slots[i])
	}

	// Split the population into uniformly seeded hosts and hosts sharing
	// one of a small pool of popular (low-entropy) seeds.
	nClustered := uint64(float64(cfg.Hosts) * cfg.ClusteredSeedFraction)
	nUniform := uint64(cfg.Hosts) - nClustered
	pool := cfg.ClusteredSeedPool
	if pool <= 0 {
		pool = 256
	}

	// Exact pass over every short cycle (uniform-seed hosts land on a
	// cycle in proportion to its length).
	var nShortHosts uint64
	shortMass := make([]uint64, len(cfg.Blocks)) // Σ cycle length per block
	m.ForEachShortCycle(shortLimit, func(start uint32, length uint64) {
		touched := make(map[[2]int]uint32)
		state := start
		for i := uint64(0); i < length; i++ {
			if b, s, ok := bi.locate(state); ok {
				touched[[2]int{b, s}]++
			}
			state = m.Step(state)
		}
		nHosts := r.Binomial(nUniform, float64(length)/float64(uint64(1)<<32))
		nShortHosts += nHosts
		blocksTouched := make(map[int]bool)
		for key := range touched {
			blocksTouched[key[0]] = true
		}
		if nHosts > 0 {
			wraps := float64(cfg.WindowProbes) / float64(length)
			// Sorted so the float accumulation is bit-reproducible: FP
			// addition is not associative, and map order is randomized.
			for _, key := range sortedTouched(touched) {
				unique[key[0]][key[1]] += float64(nHosts)
				attempts[key[0]][key[1]] += float64(nHosts) * float64(touched[key]) * wraps
			}
		}
		for b := range blocksTouched {
			shortMass[b] += length
		}
	})

	// Aggregated pass for uniformly seeded long-cycle hosts: per-/24 touch
	// probability 1−e^{−W·256/2^32}, attempts rate W·256/2^32 per host.
	nLong := nUniform - nShortHosts
	lambda := float64(cfg.WindowProbes) * 256 / float64(uint64(1)<<32)
	longMass := longCycleMass(m, shortLimit)
	blockFrac := func(b int) float64 {
		if n := cfg.Blocks[b].Prefix.NumAddrs(); n < 256 {
			return float64(n) / 256 // sub-/24 blocks monitor fewer addresses
		}
		return 1
	}
	for b := range cfg.Blocks {
		frac := blockFrac(b)
		for s := 0; s < bi.slots[b]; s++ {
			u := r.Binomial(nLong, 1-math.Exp(-lambda*frac))
			unique[b][s] += float64(u)
			attempts[b][s] += float64(r.Poisson(float64(nLong) * lambda * frac))
		}
	}

	// Clustered-seed pass: every host sharing a popular seed walks the
	// same trajectory, so whole cohorts appear (or fail to appear) at the
	// same /24s — the aggregate hotspots and deficits of Figure 2.
	perSeed := nClustered / uint64(pool)
	for p := 0; p < pool && perSeed > 0; p++ {
		seed := uint32(rng.Mix64(cfg.Seed ^ uint64(p)<<17 | 3))
		length := m.Period(seed)
		if length <= shortLimit {
			// The cohort wraps this short cycle together: walk it exactly.
			nShortHosts += perSeed
			wraps := float64(cfg.WindowProbes) / float64(length)
			state := seed
			touched := make(map[[2]int]uint32)
			for i := uint64(0); i < length; i++ {
				if b, s, ok := bi.locate(state); ok {
					touched[[2]int{b, s}]++
				}
				state = m.Step(state)
			}
			// Sorted for bit-reproducible accumulation; see the short-cycle
			// pass above.
			for _, key := range sortedTouched(touched) {
				unique[key[0]][key[1]] += float64(perSeed)
				attempts[key[0]][key[1]] += float64(perSeed) * float64(touched[key]) * wraps
			}
			continue
		}
		// Long-cycle cohort: one shared window-sized trajectory; each /24
		// is either seen by the whole cohort or by none of it.
		for b := range cfg.Blocks {
			frac := blockFrac(b)
			for s := 0; s < bi.slots[b]; s++ {
				hits := r.Poisson(lambda * frac)
				if hits == 0 {
					continue
				}
				unique[b][s] += float64(perSeed)
				attempts[b][s] += float64(perSeed) * float64(hits)
			}
		}
	}

	// Upstream filtering: blocked blocks observe nothing.
	blocked := make(map[string]bool, len(cfg.BlockedLabels))
	for _, l := range cfg.BlockedLabels {
		blocked[l] = true
	}
	for b, blk := range cfg.Blocks {
		if blocked[blk.Label] {
			for s := range unique[b] {
				unique[b][s] = 0
				attempts[b][s] = 0
			}
		}
	}

	// Assemble outputs.
	res := &Result{}
	fig := Figure{
		ID:     "Figure 2",
		Title:  "Observed unique Slammer infected source IPs by destination /24",
		XLabel: "destination /24 (grouped by sensor block)",
		YLabel: "unique source IPs",
	}
	var concat, concatAttempts []uint64
	blockTotals := Table{
		ID:      "Figure 2 (block totals)",
		Title:   "Per-block unique sources and cycle mass traversing each block",
		Columns: []string{"Block", "Mean uniq src per /24", "Cycle mass (×2^32)", "Filtered"},
	}
	for b, blk := range cfg.Blocks {
		s := Series{Name: blk.String()}
		var sum float64
		for slot, u := range unique[b] {
			s.X = append(s.X, float64(bi.base[b])+float64(slot))
			s.Y = append(s.Y, u)
			sum += u
			concat = append(concat, uint64(u))
			concatAttempts = append(concatAttempts, uint64(attempts[b][slot]))
		}
		fig.Series = append(fig.Series, s)
		mass := float64(shortMass[b]+longMass) / float64(uint64(1)<<32)
		if blocked[blk.Label] {
			mass = 0
		}
		blockTotals.Rows = append(blockTotals.Rows, []string{
			blk.String(),
			fmt.Sprintf("%.0f", sum/float64(bi.slots[b])),
			fmt.Sprintf("%.4f", mass),
			fmt.Sprintf("%v", blocked[blk.Label]),
		})
	}
	res.Figures = append(res.Figures, fig)
	res.Tables = append(res.Tables, blockTotals)

	rep := core.Analyze(concat)
	res.SetMetric("fig2.gini_unique", rep.Gini)
	res.SetMetric("fig2.hotspots_unique", float64(len(rep.Hotspots)))
	res.Notef("short-cycle hosts: %d of %d (%.2f%%) — trapped in cycles ≤ %d states",
		nShortHosts, cfg.Hosts, 100*float64(nShortHosts)/float64(cfg.Hosts), shortLimit)
	res.Notef("unique-source analysis: chi2=%.0f (df=%d), Gini=%.3f, zero-/24s=%d, hotspots(≥5x)=%d",
		rep.ChiSquare, rep.DF, rep.Gini, rep.ZeroBuckets, len(rep.Hotspots))
	// The cycle structure concentrates *attempts*: a short-cycle host wraps
	// its cycle thousands of times, hammering the same addresses — the
	// "targeted denial of service" pattern.
	repA := core.Analyze(concatAttempts)
	res.SetMetric("fig2.hotspots_attempts", float64(len(repA.Hotspots)))
	res.Notef("attempt analysis: chi2=%.0f (df=%d), Gini=%.3f, spread=%.1f orders, hotspots(≥5x)=%d",
		repA.ChiSquare, repA.DF, repA.Gini, repA.SpreadOrders, len(repA.Hotspots))
	return res, nil
}

// longCycleMass returns the summed length of every cycle longer than
// shortLimit. Such cycles are equidistributed at /20 granularity and
// traverse every monitored block, so their mass is block-independent.
func longCycleMass(m cycle.Map, shortLimit uint64) uint64 {
	var mass uint64
	for _, c := range m.Census() {
		if c.Length > shortLimit {
			mass += c.States
		}
	}
	return mass
}

// sortedTouched returns touched's keys in lexicographic (block, slot)
// order, so that accumulating per-cell contributions is independent of
// map iteration order.
func sortedTouched(touched map[[2]int]uint32) [][2]int {
	keys := make([][2]int, 0, len(touched))
	for key := range touched {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	return keys
}
