// Package experiments reproduces every table and figure in the paper's
// evaluation: each experiment is a function from an explicit configuration
// to typed rows/series, used by cmd/experiments, the examples, the
// benchmark harness, and EXPERIMENTS.md.
//
// Index (see DESIGN.md for the full mapping):
//
//	Table1  — botnet scan commands captured on a live network
//	Fig1    — Blaster unique sources by destination /24 + seed inversion
//	Fig2    — Slammer unique sources by destination /24 (cycle structure)
//	Fig3    — per-host Slammer scanning + LCG cycle census
//	Fig4    — CodeRedII unique sources by /24 + quarantined-host runs
//	Table2  — enterprise egress filtering vs broadband ISPs
//	Fig5a   — hit-list length vs infection rate
//	Fig5b   — hit-list length vs sensor alert rate
//	Fig5c   — sensor placement vs alert rate under NAT'd populations
//
// Absolute numbers are not expected to match the paper (its inputs were
// live 2004–2005 captures); the reproduced quantity is the shape: who wins,
// by what order of magnitude, and where the crossovers fall.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Table is a reproduced table.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
}

// Render formats the table as aligned text.
func (t Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Series is one plotted line.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a reproduced figure: one or more series over shared axes.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Result bundles an experiment's outputs.
type Result struct {
	Tables  []Table
	Figures []Figure
	// Notes carries experiment-specific findings (hotspot reports, seed
	// inversions, block totals) for the textual summary.
	Notes []string
	// Metrics records key scalar outcomes by name (e.g.
	// "fig5c.placed-192/8.alerted_at_20pct") for programmatic checks.
	Metrics map[string]float64
}

// Notef appends a formatted note.
func (r *Result) Notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// SetMetric records a named scalar outcome.
func (r *Result) SetMetric(name string, v float64) {
	if r.Metrics == nil {
		r.Metrics = make(map[string]float64)
	}
	r.Metrics[name] = v
}

// Metric returns a named scalar outcome (0 if absent).
func (r *Result) Metric(name string) float64 { return r.Metrics[name] }

// Downsample reduces a series to at most n points by striding, always
// keeping the final point; it returns the input when already small enough.
func Downsample(s Series, n int) Series {
	if n <= 0 || len(s.X) <= n {
		return s
	}
	stride := (len(s.X) + n - 1) / n
	out := Series{Name: s.Name}
	for i := 0; i < len(s.X); i += stride {
		out.X = append(out.X, s.X[i])
		out.Y = append(out.Y, s.Y[i])
	}
	last := len(s.X) - 1
	if out.X[len(out.X)-1] != s.X[last] {
		out.X = append(out.X, s.X[last])
		out.Y = append(out.Y, s.Y[last])
	}
	return out
}

// sortedKeys returns the sorted keys of a string-keyed map (stable output
// ordering for tables).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
