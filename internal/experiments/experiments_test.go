package experiments

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := Table{
		ID:      "T",
		Title:   "demo",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"x", "y"}, {"wide-cell", "z"}},
	}
	out := tb.Render()
	if !strings.Contains(out, "T — demo") {
		t.Error("header missing")
	}
	if !strings.Contains(out, "long-column") || !strings.Contains(out, "wide-cell") {
		t.Error("cells missing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Errorf("rendered %d lines, want 5", len(lines))
	}
}

func TestDownsample(t *testing.T) {
	s := Series{Name: "s"}
	for i := 0; i < 1000; i++ {
		s.X = append(s.X, float64(i))
		s.Y = append(s.Y, float64(i*2))
	}
	d := Downsample(s, 100)
	if len(d.X) > 101 {
		t.Errorf("downsampled to %d points, want ≤101", len(d.X))
	}
	if d.X[0] != 0 || d.X[len(d.X)-1] != 999 {
		t.Error("endpoints not preserved")
	}
	// Small series pass through untouched.
	small := Series{X: []float64{1, 2}, Y: []float64{3, 4}}
	if got := Downsample(small, 100); len(got.X) != 2 {
		t.Error("small series modified")
	}
	if got := Downsample(s, 0); len(got.X) != len(s.X) {
		t.Error("n=0 should pass through")
	}
}

func TestRegistryRunsAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep still takes seconds")
	}
	for _, id := range Names() {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := Run(id, 1, Quick)
			if err != nil {
				t.Fatalf("Run(%s): %v", id, err)
			}
			if len(res.Tables) == 0 && len(res.Figures) == 0 {
				t.Fatalf("Run(%s) produced no output", id)
			}
			if len(res.Notes) == 0 {
				t.Errorf("Run(%s) produced no notes", id)
			}
		})
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("nope", 1, Quick); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	want := []string{
		"ext-containment", "ext-faults", "ext-ims", "ext-natsweep", "ext-prevalence", "ext-threshold", "ext-witty",
		"fig1", "fig2", "fig3", "fig4", "fig5a", "fig5b", "fig5c",
		"table1", "table2",
	}
	if len(names) != len(want) {
		t.Fatalf("registry has %d entries, want %d: %v", len(names), len(want), names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("Names()[%d] = %s, want %s", i, names[i], n)
		}
	}
}
