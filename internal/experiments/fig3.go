package experiments

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/cycle"
	"repro/internal/sensor"
	"repro/internal/worm"
)

// Fig3Config parameterizes the per-host Slammer study and the cycle census.
type Fig3Config struct {
	// Variant selects the sqlsort.dll increment.
	Variant int
	// WindowProbes is the per-host probe budget (a month of scanning).
	WindowProbes uint64
	// Blocks are the monitored darknets.
	Blocks []sensor.Block
	// Seed drives host selection.
	Seed uint64
}

// DefaultFig3 returns the Figure 3 configuration.
func DefaultFig3(seed uint64) Fig3Config {
	return Fig3Config{
		Variant:      1,
		WindowProbes: 26e6,
		Blocks:       sensor.DefaultIMSBlocks(),
		Seed:         seed,
	}
}

// RunFig3 reproduces Figure 3: (a, b) the per-/24 infection attempts of two
// individual Slammer hosts — one trapped in a short PRNG cycle that skips
// entire sensor blocks, one on a medium cycle with high intra-block
// variance — and (c) the period of every cycle of the Slammer LCG.
func RunFig3(cfg Fig3Config) (*Result, error) {
	if cfg.WindowProbes == 0 {
		return nil, errors.New("experiments: fig3 needs a window")
	}
	if cfg.Variant < 0 || cfg.Variant > 2 {
		return nil, errors.New("experiments: fig3 variant out of range")
	}
	bi, err := newBlockIndex(cfg.Blocks)
	if err != nil {
		return nil, err
	}
	m := worm.SlammerMap(cfg.Variant)
	res := &Result{}

	// (c) The census first: it also guides host selection.
	census := m.Census()
	censusFig := Figure{
		ID:     "Figure 3c",
		Title:  "Period of all possible cycles in the Slammer LCG",
		XLabel: "cycle (sorted by period)",
		YLabel: "period (log scale)",
	}
	var periods []float64
	var totalCycles uint64
	for _, c := range census {
		for i := uint64(0); i < c.Cycles; i++ {
			periods = append(periods, float64(c.Length))
		}
		totalCycles += c.Cycles
	}
	sort.Float64s(periods)
	s := Series{Name: fmt.Sprintf("b=%#x", worm.SlammerIncrements()[cfg.Variant])}
	for i, p := range periods {
		s.X = append(s.X, float64(i))
		s.Y = append(s.Y, p)
	}
	censusFig.Series = append(censusFig.Series, s)
	res.Figures = append(res.Figures, censusFig)
	var fixedPoints uint64
	for _, c := range census {
		if c.Length == 1 {
			fixedPoints += c.Cycles
		}
	}
	res.Notef("cycle census: %d cycles, periods %v … %v, %d of period one",
		totalCycles, periods[0], periods[len(periods)-1], fixedPoints)

	// (a) Host A: the largest enumerable cycle that misses at least one
	// monitored block while hitting others — "block D observed no infection
	// attempts from this particular source".
	shortLimit := uint64(1) << uint(bits.Len64(cfg.WindowProbes)-1)
	hostA, okA := findSkippingCycle(m, bi, shortLimit)
	if okA {
		fig, seen, missed := perHostFigure(m, bi, cfg, hostA, "Figure 3a",
			"Slammer host A (short-cycle): infection attempts by destination /24")
		res.Figures = append(res.Figures, fig)
		res.Notef("host A seed %#x period %d: hits blocks %v, misses %v",
			hostA, m.Period(hostA), seen, missed)
	} else {
		res.Notef("host A: no short cycle skips a block under this geometry")
	}

	// (b) Host B: a medium-cycle host — covers its whole cycle many times,
	// so its per-/24 counts inside a block vary wildly.
	hostB, okB := mediumCycleSeed(m, shortLimit)
	if okB {
		fig, seen, _ := perHostFigure(m, bi, cfg, hostB, "Figure 3b",
			"Slammer host B (medium-cycle): infection attempts by destination /24")
		res.Figures = append(res.Figures, fig)
		res.Notef("host B seed %#x period %d: hits blocks %v with high intra-block variance",
			hostB, m.Period(hostB), seen)
	}
	if !okA && !okB {
		return res, errors.New("experiments: no illustrative Slammer hosts found")
	}
	return res, nil
}

// findSkippingCycle searches the enumerable cycles for the longest one
// that hits at least two blocks but misses at least one /20-or-larger
// block. Returns a member state.
func findSkippingCycle(m cycle.Map, bi *blockIndex, limit uint64) (uint32, bool) {
	type candidate struct {
		start  uint32
		length uint64
	}
	var best candidate
	m.ForEachShortCycle(limit, func(start uint32, length uint64) {
		if length <= best.length {
			return
		}
		hit := make(map[int]bool)
		state := start
		for i := uint64(0); i < length; i++ {
			if b, _, ok := bi.locate(state); ok {
				hit[b] = true
			}
			state = m.Step(state)
		}
		missesBig := false
		for b, blk := range bi.blocks {
			if !hit[b] && blk.Prefix.Bits() <= 20 {
				missesBig = true
			}
		}
		if len(hit) >= 2 && missesBig {
			best = candidate{start: start, length: length}
		}
	})
	return best.start, best.length > 0
}

// mediumCycleSeed returns a state whose period is exactly the enumeration
// limit — the largest cycle a host can fully wrap within the window.
func mediumCycleSeed(m cycle.Map, limit uint64) (uint32, bool) {
	prog, ok := m.StatesWithPeriodAtMost(limit)
	if !ok {
		return 0, false
	}
	for i := uint64(0); i < prog.Count; i++ {
		if state := prog.Nth(i); m.Period(state) == limit {
			return state, true
		}
	}
	return prog.Start, true
}

// perHostFigure walks one host's month of probes and tabulates per-/24
// attempts inside the monitored blocks.
func perHostFigure(m cycle.Map, bi *blockIndex, cfg Fig3Config, seed uint32, id, title string) (Figure, []string, []string) {
	period := m.Period(seed)
	counts := make([][]uint64, len(bi.blocks))
	for i := range counts {
		counts[i] = make([]uint64, bi.slots[i])
	}
	steps := cfg.WindowProbes
	wraps := 1.0
	if period < steps {
		wraps = float64(steps) / float64(period)
		steps = period
	}
	state := seed
	for i := uint64(0); i < steps; i++ {
		state = m.Step(state)
		if b, s, ok := bi.locate(state); ok {
			counts[b][s]++
		}
	}
	fig := Figure{ID: id, Title: title,
		XLabel: "destination /24 (grouped by sensor block)",
		YLabel: "infection attempts"}
	var seen, missed []string
	for b, blk := range bi.blocks {
		s := Series{Name: blk.String()}
		var total uint64
		for slot, c := range counts[b] {
			s.X = append(s.X, float64(bi.base[b])+float64(slot))
			s.Y = append(s.Y, float64(c)*wraps)
			total += c
		}
		fig.Series = append(fig.Series, s)
		if total > 0 {
			seen = append(seen, blk.String())
		} else {
			missed = append(missed, blk.String())
		}
	}
	return fig, seen, missed
}
