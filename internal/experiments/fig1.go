package experiments

import (
	"errors"
	"sort"

	"repro/internal/core"
	"repro/internal/ipv4"
	"repro/internal/rng"
	"repro/internal/sensor"
	"repro/internal/worm"
)

// Fig1Config parameterizes the Blaster hotspot study.
type Fig1Config struct {
	// Hosts is the number of persistently infected Blaster machines.
	Hosts int
	// ScanRate is sequential-scan probes per second per host.
	ScanRate float64
	// WindowSeconds is the observation window (the paper: one month).
	WindowSeconds float64
	// MeanUptimeSeconds is the mean time between crashes/reboots of an
	// infected machine. Blaster infamously crash-looped its victims: every
	// reboot reseeds srand(GetTickCount()) and picks a fresh start point.
	MeanUptimeSeconds float64
	// Ticks models the GetTickCount() value at worm launch.
	Ticks worm.TickModel
	// Blocks are the monitored darknets.
	Blocks []sensor.Block
	// Seed drives all randomness.
	Seed uint64
}

// DefaultFig1 returns the Figure 1 configuration. The launch-delay mean is
// short (the worm's Run key fires as the session comes up), which
// concentrates the quantized tick counts — the root cause of the start-
// address clustering.
func DefaultFig1(seed uint64) Fig1Config {
	ticks := worm.DefaultRebootTickModel()
	ticks.MeanDelayMS = 10000
	return Fig1Config{
		Hosts:             5000,
		ScanRate:          10,
		WindowSeconds:     2.6e6, // one month
		MeanUptimeSeconds: 7200,
		Ticks:             ticks,
		Blocks:            sensor.DefaultIMSBlocks(),
		Seed:              seed,
	}
}

// fig1Block accumulates per-/24 statistics for one monitored block.
type fig1Block struct {
	block    sensor.Block
	base     uint32 // first /24 index of the block
	n        int    // number of /24 slots
	unique   []uint32
	attempts []uint64
	lastHost []int32
}

// RunFig1 reproduces Figure 1: the distribution of unique Blaster source
// IPs by destination /24 across the IMS blocks, and the inversion from the
// dominant hotspot back to plausible GetTickCount() seeds.
func RunFig1(cfg Fig1Config) (*Result, error) {
	if cfg.Hosts <= 0 || cfg.ScanRate <= 0 || cfg.WindowSeconds <= 0 || cfg.MeanUptimeSeconds <= 0 {
		return nil, errors.New("experiments: fig1 parameters must be positive")
	}
	if cfg.Ticks == nil || len(cfg.Blocks) == 0 {
		return nil, errors.New("experiments: fig1 needs a tick model and blocks")
	}
	r := rng.NewXoshiro(cfg.Seed)

	blocks := make([]*fig1Block, len(cfg.Blocks))
	for i, b := range cfg.Blocks {
		n := b.Prefix.Slash24s()
		fb := &fig1Block{
			block:    b,
			base:     b.Prefix.First().Slash24(),
			n:        n,
			unique:   make([]uint32, n),
			attempts: make([]uint64, n),
			lastHost: make([]int32, n),
		}
		for j := range fb.lastHost {
			fb.lastHost[j] = -1
		}
		blocks[i] = fb
	}

	sessionsPerHost := cfg.WindowSeconds / cfg.MeanUptimeSeconds
	probesPerSession := uint64(cfg.MeanUptimeSeconds * cfg.ScanRate)
	if probesPerSession == 0 {
		return nil, errors.New("experiments: fig1 sessions emit no probes")
	}

	for host := 0; host < cfg.Hosts; host++ {
		own := randomPublicAddr(r)
		sessions := int(r.Poisson(sessionsPerHost)) + 1
		for s := 0; s < sessions; s++ {
			tick := cfg.Ticks.DrawTick(r)
			start := worm.BlasterStart(own, tick)
			recordSweep(blocks, int32(host), uint32(start), probesPerSession)
		}
	}

	// Assemble the figure and the concatenated distribution for analysis.
	res := &Result{}
	fig := Figure{
		ID:     "Figure 1",
		Title:  "Observed unique source IPs of Blaster infection attempts by /24",
		XLabel: "destination /24 (grouped by sensor block)",
		YLabel: "unique source IPs",
	}
	var concat []uint64
	var hotCount uint32
	var hot24 uint32
	for _, fb := range blocks {
		s := Series{Name: fb.block.String()}
		for j, u := range fb.unique {
			s.X = append(s.X, float64(fb.base)+float64(j))
			s.Y = append(s.Y, float64(u))
			concat = append(concat, uint64(u))
			if u > hotCount {
				hotCount = u
				hot24 = fb.base + uint32(j)
			}
		}
		fig.Series = append(fig.Series, s) // full resolution; renderers downsample
	}
	res.Figures = append(res.Figures, fig)

	rep := core.Analyze(concat)
	res.Notef("hotspot analysis: chi2=%.0f (df=%d), Gini=%.3f, spread=%.1f orders, hotspots(≥5x median)=%d",
		rep.ChiSquare, rep.DF, rep.Gini, rep.SpreadOrders, len(rep.Hotspots))
	if hotCount > 0 {
		res.Notef("dominant hotspot: /24 %v with %d unique sources",
			ipv4.Addr(hot24<<8), hotCount)
		ticks := invertBlasterSpike(hot24, probesPerSession, cfg)
		if len(ticks) > 0 {
			shown := ticks
			if len(shown) > 8 {
				shown = shown[:8]
			}
			secs := make([]float64, len(shown))
			for i, t := range shown {
				secs[i] = float64(t) / 1000
			}
			res.Notef("seed inversion: %d tick values map into the hotspot window; candidate GetTickCount seeds (s since boot): %.1f — the earliest matches the boot+launch mass, exactly the paper's seed-to-spike correlation",
				len(ticks), secs)
		}
	}
	return res, nil
}

// recordSweep registers a sequential scan of `probes` addresses starting at
// start against every monitored block, deduplicating unique-source counts
// per host. The sweep may wrap around the top of the address space.
func recordSweep(blocks []*fig1Block, host int32, start uint32, probes uint64) {
	if probes >= 1<<32 {
		probes = 1 << 32
	}
	end := uint64(start) + probes - 1 // inclusive
	segments := [2][2]uint32{{start, 0}, {0, 0}}
	nSeg := 1
	if end > 0xffffffff {
		segments[0][1] = 0xffffffff
		segments[1] = [2]uint32{0, uint32(end)}
		nSeg = 2
	} else {
		segments[0][1] = uint32(end)
	}
	for si := 0; si < nSeg; si++ {
		lo, hi := segments[si][0], segments[si][1]
		for _, fb := range blocks {
			bLo, bHi := uint32(fb.block.Prefix.First()), uint32(fb.block.Prefix.Last())
			iLo, iHi := lo, hi
			if bLo > iLo {
				iLo = bLo
			}
			if bHi < iHi {
				iHi = bHi
			}
			if iLo > iHi {
				continue
			}
			for idx24 := iLo >> 8; idx24 <= iHi>>8; idx24++ {
				slot := int(idx24 - fb.base)
				if slot < 0 || slot >= fb.n {
					slot = 0 // sub-/24 block: single slot
				}
				aLo, aHi := idx24<<8, idx24<<8|0xff
				if iLo > aLo {
					aLo = iLo
				}
				if iHi < aHi {
					aHi = iHi
				}
				fb.attempts[slot] += uint64(aHi-aLo) + 1
				if fb.lastHost[slot] != host {
					fb.lastHost[slot] = host
					fb.unique[slot]++
				}
			}
		}
	}
}

// invertBlasterSpike scans the plausible GetTickCount() range and returns
// every quantized tick whose non-local start address would sweep through
// the hotspot /24 within one session — the paper's seed-to-address
// correlation run in reverse. Results are sorted ascending.
func invertBlasterSpike(hot24 uint32, probesPerSession uint64, cfg Fig1Config) []uint32 {
	// The non-local branch of BlasterStart ignores the host's own address,
	// so any public own-address outside the hotspot /16 works.
	own := ipv4.MustParseAddr("1.2.3.4")
	span24 := uint32(probesPerSession >> 8)
	var out []uint32
	const granularity = 16
	maxTick := uint32(1.2e6) // generously past boot + delay mass
	if m, ok := cfg.Ticks.(worm.RebootTickModel); ok && m.MaxTickMS > 0 {
		maxTick = m.MaxTickMS
	}
	for tick := uint32(0); tick < maxTick; tick += granularity {
		start := worm.BlasterStart(own, tick)
		if start.SameSlash16(own) {
			continue // local branch: start depends on own, not informative
		}
		s24 := uint32(start.Slash24())
		if hot24 >= s24 && hot24-s24 <= span24 {
			out = append(out, tick)
		}
	}
	return out
}

// randomPublicAddr draws a routable, non-private, non-reserved address.
func randomPublicAddr(r *rng.Xoshiro) ipv4.Addr {
	for {
		a := ipv4.Addr(r.Uint32())
		if !a.IsReserved() && !a.IsPrivate() && !a.IsLoopback() {
			return a
		}
	}
}

// Fig1SpikeRatio is a convenience for tests and ablations: the ratio of the
// maximum per-/24 unique-source count to the median positive count across
// all monitored /24s.
func Fig1SpikeRatio(res *Result) (float64, error) {
	if len(res.Figures) == 0 {
		return 0, errors.New("experiments: result has no figures")
	}
	var all []uint64
	var maxV uint64
	for _, s := range res.Figures[0].Series {
		for _, y := range s.Y {
			v := uint64(y)
			all = append(all, v)
			if v > maxV {
				maxV = v
			}
		}
	}
	med := medianPositive(all)
	if med <= 0 {
		return 0, errors.New("experiments: no observations")
	}
	return float64(maxV) / med, nil
}

func medianPositive(counts []uint64) float64 {
	var pos []float64
	for _, c := range counts {
		if c > 0 {
			pos = append(pos, float64(c))
		}
	}
	if len(pos) == 0 {
		return 0
	}
	sort.Float64s(pos)
	mid := len(pos) / 2
	if len(pos)%2 == 1 {
		return pos[mid]
	}
	return (pos[mid-1] + pos[mid]) / 2
}
