package experiments

import (
	"strings"
	"testing"
)

func TestWriteMarkdown(t *testing.T) {
	res := &Result{
		Tables: []Table{{
			ID: "T1", Title: "demo",
			Columns: []string{"a", "b"},
			Rows:    [][]string{{"x|pipe", "y"}},
		}},
		Figures: []Figure{{
			ID: "F1", Title: "curve", XLabel: "t", YLabel: "v",
			Series: []Series{{Name: "s", X: []float64{0, 1, 2}, Y: []float64{0, 2, 1}}},
		}},
		Notes: []string{"a note"},
	}
	res.SetMetric("m.one", 0.5)

	var b strings.Builder
	if err := WriteMarkdown(&b, "demo-exp", res); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"## demo-exp",
		"### T1 — demo",
		"| a | b |",
		"x\\|pipe", // pipes escaped inside table cells
		"### F1 — curve",
		"```",
		"* a note",
		"* `m.one` = 0.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestWriteMarkdownFromRegistry(t *testing.T) {
	res, err := Run("table1", 1, Quick)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteMarkdown(&b, "table1", res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Bot Propagation Command") {
		t.Error("registry result did not render")
	}
}
