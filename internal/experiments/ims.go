package experiments

import (
	"errors"
	"fmt"

	"repro/internal/ipv4"
	"repro/internal/payload"
	"repro/internal/rng"
	"repro/internal/sensor"
	"repro/internal/worm"
)

// ExtIMSConfig parameterizes the measurement-methodology study.
type ExtIMSConfig struct {
	// Probes per worm instance directed at the monitored space.
	Probes uint64
	// Blocks are the monitored darknets.
	Blocks []sensor.Block
	// Earlybird configures the signature extractor behind each sensor.
	Earlybird payload.EarlybirdConfig
	// Seed drives the generators.
	Seed uint64
}

// DefaultExtIMS returns the IMS-methodology configuration.
func DefaultExtIMS(seed uint64) ExtIMSConfig {
	eb := payload.DefaultEarlybirdConfig()
	eb.SampleRate = 16
	// The traffic source is a single quarantined host, so the source-
	// dispersion gate must not apply.
	eb.SrcThreshold = 1
	return ExtIMSConfig{
		Probes:    3000000,
		Blocks:    sensor.DefaultIMSBlocks(),
		Earlybird: eb,
		Seed:      seed,
	}
}

// RunExtIMS reproduces the paper's §4.1 methodology point as a result: the
// IMS darknets "actively responded to TCP SYN packets with a SYN-ACK packet
// to elicit the first data payload", which is what made the studied threats
// identifiable. A passive telescope records the same probe counts but —
// for TCP worms — never obtains a payload, so signature extraction starves.
func RunExtIMS(cfg ExtIMSConfig) (*Result, error) {
	if cfg.Probes == 0 || len(cfg.Blocks) == 0 {
		return nil, errors.New("experiments: ext-ims needs probes and blocks")
	}
	worms := []struct {
		name string
		gen  worm.TargetGenerator
		own  ipv4.Addr
	}{
		{name: "slammer", gen: worm.NewSlammer(1, uint32(rng.Mix64(cfg.Seed))), own: ipv4.MustParseAddr("18.5.5.5")},
		{name: "codered2", gen: worm.NewCodeRedII(ipv4.MustParseAddr("41.20.0.5"), uint32(rng.Mix64(cfg.Seed+1))), own: ipv4.MustParseAddr("41.20.0.5")},
		// The Blaster host sits inside the Z block's /8 with a tick count
		// whose local branch starts the sequential sweep at its own /16 —
		// so the sweep runs straight through monitored space.
		{name: "blaster", gen: worm.NewBlaster(ipv4.MustParseAddr("41.7.0.5"), 130000), own: ipv4.MustParseAddr("41.7.0.5")},
	}

	res := &Result{}
	table := Table{
		ID:    "Extension: IMS active response",
		Title: "Passive telescope vs SYN-ACK-responding darknet, per worm",
		Columns: []string{
			"Worm", "Probe kind", "Mode", "Probes recorded", "Payloads obtained", "Signatures",
		},
	}
	for _, w := range worms {
		kind, ok := sensor.WormProbeKind(w.name)
		if !ok {
			return nil, fmt.Errorf("experiments: no probe kind for %s", w.name)
		}
		content := payload.DefaultWormPayload(w.name)
		for _, mode := range []sensor.ResponseMode{sensor.Passive, sensor.ActiveSYNACK} {
			fleet := sensor.MustNewFleet(cfg.Blocks)
			for _, s := range fleet.Sensors() {
				s.Mode = mode
			}
			eb, err := payload.NewEarlybird(cfg.Earlybird)
			if err != nil {
				return nil, err
			}
			sensors := fleet.Sensors()
			var recorded, payloads uint64
			for i := uint64(0); i < cfg.Probes; i++ {
				dst := w.gen.Next()
				if dst.IsPrivate() {
					continue
				}
				// Route to the owning sensor via the fleet's coverage.
				for _, s := range sensors {
					if !s.Contains(dst) {
						continue
					}
					rec, pay := s.ObserveKind(w.own, dst, kind)
					if rec {
						recorded++
					}
					if pay {
						payloads++
						eb.Observe(w.own, dst, content.Instance(i))
					}
					break
				}
			}
			table.Rows = append(table.Rows, []string{
				w.name, kind.String(), mode.String(),
				fmt.Sprintf("%d", recorded),
				fmt.Sprintf("%d", payloads),
				fmt.Sprintf("%d", eb.Alarms()),
			})
			res.SetMetric(fmt.Sprintf("ext-ims.%s.%s.payloads", w.name, mode), float64(payloads))
			res.SetMetric(fmt.Sprintf("ext-ims.%s.%s.signatures", w.name, mode), float64(eb.Alarms()))
		}
	}
	res.Tables = append(res.Tables, table)
	res.Notef("UDP worms (Slammer) are identifiable from any telescope; TCP worms yield payloads — and signatures — only to actively responding sensors: the IMS design decision that made the paper's measurements possible")
	return res, nil
}
