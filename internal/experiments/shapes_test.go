package experiments

// Shape tests: each experiment must reproduce the qualitative result the
// paper reports — orderings, crossovers, orders of magnitude — at reduced
// scale. These are the reproduction's acceptance tests.

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/sensor"
	"repro/internal/worm"
)

func TestFig1ShapeTickSeedingCreatesHotspots(t *testing.T) {
	cfg := DefaultFig1(3)
	cfg.Hosts = 1500
	res, err := RunFig1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ratio, err := Fig1SpikeRatio(res)
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 5 {
		t.Errorf("tick-seeded Blaster spike ratio = %.1f, want ≥5 (hotspots)", ratio)
	}

	// Ablation: a well-seeded PRNG erases the hotspots.
	cfg.Ticks = worm.UniformTickModel{}
	ablation, err := RunFig1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ablRatio, err := Fig1SpikeRatio(ablation)
	if err != nil {
		t.Fatal(err)
	}
	if ablRatio*2 >= ratio {
		t.Errorf("ablation spike ratio %.1f not clearly below tick-seeded %.1f", ablRatio, ratio)
	}
}

func TestFig1SeedInversionFindsPlausibleTicks(t *testing.T) {
	cfg := DefaultFig1(4)
	cfg.Hosts = 1500
	res, err := RunFig1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range res.Notes {
		if strings.Contains(n, "seed inversion") {
			found = true
		}
	}
	if !found {
		t.Error("no seed-inversion note produced")
	}
}

func TestFig2ShapeFilteredBlockSeesNothing(t *testing.T) {
	cfg := DefaultFig2(5)
	cfg.Hosts = 5000
	cfg.WindowProbes = 1 << 21
	res, err := RunFig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Figures[0].Series {
		if s.Name != "M/22" {
			continue
		}
		for _, y := range s.Y {
			if y != 0 {
				t.Fatalf("upstream-filtered M block observed traffic (%v)", y)
			}
		}
	}
	// Unfiltered blocks all observe substantial traffic.
	for _, s := range res.Figures[0].Series {
		if s.Name == "M/22" {
			continue
		}
		var total float64
		for _, y := range s.Y {
			total += y
		}
		if total == 0 {
			t.Errorf("block %s observed nothing", s.Name)
		}
	}
}

func TestFig2ShapeClusteredSeedsCreateNonUniformity(t *testing.T) {
	cfg := DefaultFig2(6)
	cfg.Hosts = 20000
	cfg.WindowProbes = 1 << 22
	res, err := RunFig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gini := res.Metric("fig2.gini_unique")

	// Ablation: with uniformly random seeds, the affine orbit structure
	// provably yields near-uniform expected counts.
	cfg.ClusteredSeedFraction = 0
	abl, err := RunFig2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ablGini := abl.Metric("fig2.gini_unique")
	if gini < 2*ablGini || gini < 0.02 {
		t.Errorf("clustered-seed Gini %.4f not clearly above uniform-seed %.4f", gini, ablGini)
	}
}

func TestFig3ShapeHostSkipsBlocks(t *testing.T) {
	cfg := DefaultFig3(7)
	cfg.WindowProbes = 1 << 20
	res, err := RunFig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var censusNote, hostANote string
	for _, n := range res.Notes {
		if strings.HasPrefix(n, "cycle census") {
			censusNote = n
		}
		if strings.HasPrefix(n, "host A") {
			hostANote = n
		}
	}
	if !strings.Contains(censusNote, "64 cycles") {
		t.Errorf("census note = %q, want 64 cycles", censusNote)
	}
	if hostANote == "" {
		t.Fatal("host A not found")
	}
	if !strings.Contains(hostANote, "misses [") || strings.Contains(hostANote, "misses []") {
		t.Errorf("host A misses no blocks: %q", hostANote)
	}
}

func TestFig4ShapeMBlockHotspot(t *testing.T) {
	cfg := DefaultFig4(8)
	cfg.Pop = quickPopulation(8)
	cfg.QuarantineOutside = 1000000
	cfg.QuarantineNAT = 1000000
	res, err := RunFig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 4a: M block mean must exceed other blocks by ≥3x.
	mMean, otherMean := fig4BlockMeans(t, res.Figures[0])
	if mMean < 3*otherMean {
		t.Errorf("fig4a M mean %.1f vs others %.1f: hotspot missing", mMean, otherMean)
	}
	// 4b vs 4c: only the NAT'd host floods the M block.
	mOutside := res.Metric("Figure 4b.m_attempts")
	mNAT := res.Metric("Figure 4c.m_attempts")
	if mNAT < 10 || mNAT < 10*(mOutside+1) {
		t.Errorf("quarantine M totals: outside=%v NAT=%v, want NAT ≫ outside", mOutside, mNAT)
	}
}

func fig4BlockMeans(t *testing.T, fig Figure) (mMean, otherMean float64) {
	t.Helper()
	var mSum, oSum float64
	var mN, oN int
	for _, s := range fig.Series {
		for _, y := range s.Y {
			if s.Name == "M/22" {
				mSum += y
				mN++
			} else {
				oSum += y
				oN++
			}
		}
	}
	if mN == 0 || oN == 0 {
		t.Fatal("fig4a missing blocks")
	}
	return mSum / float64(mN), oSum / float64(oN)
}

func TestTable2ShapeEnterprisesInvisible(t *testing.T) {
	res, err := RunTable2(DefaultTable2(9))
	if err != nil {
		t.Fatal(err)
	}
	ent := res.Metric("enterprise_visible")
	isp := res.Metric("isp_visible")
	if isp < 20*(ent+1) {
		t.Errorf("ISP visibility %v not ≫ enterprise %v", isp, ent)
	}
}

func TestFig5aShapeSmallListsSaturateFaster(t *testing.T) {
	cfg := DefaultFig5(10)
	quickFig5(&cfg, 10)
	res, err := RunFig5a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fig := res.Figures[0]
	if len(fig.Series) != 4 {
		t.Fatalf("fig5a has %d series, want 4", len(fig.Series))
	}
	// The smallest list reaches 80% of its own coverage earlier than the
	// largest list reaches 80% of its coverage.
	tSmall := timeToReach(fig.Series[0], 0.8*12.0) // ≈80% of ~12% coverage
	tLarge := timeToReach(fig.Series[3], 0.8*100)
	if tSmall < 0 {
		t.Fatal("smallest list never saturated")
	}
	if tLarge >= 0 && tLarge < tSmall {
		t.Errorf("largest list saturated faster (%.0fs) than smallest (%.0fs)", tLarge, tSmall)
	}
	// Larger lists reach strictly more of the total population.
	finals := make([]float64, len(fig.Series))
	for i, s := range fig.Series {
		finals[i] = s.Y[len(s.Y)-1]
	}
	for i := 1; i < len(finals); i++ {
		if finals[i] < finals[i-1]-1 { // allow the unfinished tail ±1pp
			t.Errorf("final infected %%: %v not increasing with list size", finals)
		}
	}
}

func timeToReach(s Series, y float64) float64 {
	for i := range s.Y {
		if s.Y[i] >= y {
			return s.X[i]
		}
	}
	return -1
}

func TestFig5bShapeQuorumFails(t *testing.T) {
	cfg := DefaultFig5(11)
	quickFig5(&cfg, 11)
	res, err := RunFig5b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline: every hit-list except the full one leaves the
	// majority of sensors silent — quorum never reached.
	quorumFalse := 0
	for _, n := range res.Notes {
		if strings.Contains(n, "quorum(50%) reached: false") {
			quorumFalse++
		}
	}
	if quorumFalse < 3 {
		t.Errorf("only %d of the partial hit-lists failed quorum, want ≥3\nnotes: %v", quorumFalse, res.Notes)
	}
}

func TestFig5cShapePlacementOrdering(t *testing.T) {
	cfg := DefaultFig5(12)
	quickFig5(&cfg, 12)
	res, err := RunFig5c(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// At the 20%-infected mark: 192/8 sweep ≥ top-20 ≥ random.
	r := res.Metric("fig5c.randomly placed.alerted_at_20pct")
	t20 := res.Metric("fig5c.placed top-20 /8s.alerted_at_20pct")
	s := res.Metric("fig5c.placed 192/8.alerted_at_20pct")
	if !(s >= t20 && t20 >= r) {
		t.Errorf("placement ordering at 20%% infected: 192/8=%v top20=%v random=%v, want s ≥ t ≥ r", s, t20, r)
	}
	if s < 0.9 {
		t.Errorf("192/8 sweep alerted %.3f at 20%% infected, want ≈1", s)
	}
}

func TestFig5bQuorumFailureIsSeedRobust(t *testing.T) {
	// The headline result must not depend on the simulation seed: across
	// several seeds, every partial hit-list leaves the quorum unreached.
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	for seed := uint64(30); seed < 33; seed++ {
		cfg := DefaultFig5(seed)
		quickFig5(&cfg, seed)
		cfg.HitListSizes = []int{30, 200}
		res, err := RunFig5b(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range cfg.HitListSizes {
			if q := res.Metric(fmt.Sprintf("fig5b.%d.quorum", k)); q != 0 {
				t.Errorf("seed %d: %d-prefix list reached quorum", seed, k)
			}
		}
	}
}

func TestBlockIndexRejectsBadGeometry(t *testing.T) {
	blocks := sensor.DefaultIMSBlocks()
	if _, err := newBlockIndex(blocks); err != nil {
		t.Fatalf("default geometry rejected: %v", err)
	}
	dup := append([]sensor.Block{}, blocks...)
	dup = append(dup, sensor.Block{Label: "X", Prefix: blocks[0].Prefix})
	if _, err := newBlockIndex(dup); err == nil {
		t.Error("duplicate /8 accepted")
	}
}
