package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/textplot"
)

// WriteMarkdown renders one experiment's result as a Markdown section:
// tables as Markdown tables, figures as fenced ASCII charts, notes and
// metrics as lists. cmd/experiments -md stitches these into a full report.
func WriteMarkdown(w io.Writer, id string, res *Result) error {
	if _, err := fmt.Fprintf(w, "## %s\n\n", id); err != nil {
		return err
	}
	for _, t := range res.Tables {
		if err := writeMarkdownTable(w, t); err != nil {
			return err
		}
	}
	for _, f := range res.Figures {
		if err := writeMarkdownFigure(w, f); err != nil {
			return err
		}
	}
	if len(res.Notes) > 0 {
		if _, err := fmt.Fprintln(w, "**Notes**"); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
		for _, n := range res.Notes {
			if _, err := fmt.Fprintf(w, "* %s\n", n); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	if len(res.Metrics) > 0 {
		if _, err := fmt.Fprintln(w, "**Metrics**"); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
		for _, k := range sortedKeys(res.Metrics) {
			if _, err := fmt.Fprintf(w, "* `%s` = %.6g\n", k, res.Metrics[k]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

func writeMarkdownTable(w io.Writer, t Table) error {
	if _, err := fmt.Fprintf(w, "### %s — %s\n\n", t.ID, t.Title); err != nil {
		return err
	}
	writeRow := func(cells []string) error {
		escaped := make([]string, len(cells))
		for i, c := range cells {
			escaped[i] = strings.ReplaceAll(c, "|", "\\|")
		}
		_, err := fmt.Fprintf(w, "| %s |\n", strings.Join(escaped, " | "))
		return err
	}
	if err := writeRow(t.Columns); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	if err := writeRow(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func writeMarkdownFigure(w io.Writer, f Figure) error {
	if _, err := fmt.Fprintf(w, "### %s — %s\n\n", f.ID, f.Title); err != nil {
		return err
	}
	var ts []textplot.Series
	for _, s := range f.Series {
		d := Downsample(s, 72)
		ts = append(ts, textplot.Series{Name: d.Name, X: d.X, Y: d.Y})
	}
	chart := textplot.Render(
		fmt.Sprintf("y: %s, x: %s", f.YLabel, f.XLabel),
		ts, textplot.Options{Width: 72, Height: 16})
	if _, err := fmt.Fprintf(w, "```\n%s```\n\n", chart); err != nil {
		return err
	}
	return nil
}
