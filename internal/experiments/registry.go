package experiments

import (
	"repro/internal/population"
)

// Scale selects experiment fidelity.
type Scale int

// Scales.
const (
	// Quick runs a reduced configuration suited to tests and benchmarks
	// (seconds, not minutes); shapes are preserved, magnitudes shrink.
	Quick Scale = iota + 1
	// Full runs the paper-scale configuration.
	Full
)

// Runner executes one experiment. o may be nil (no observability).
type Runner func(seed uint64, scale Scale, o *Obs) (*Result, error)

// Registry maps experiment ids ("table1", "fig5c", …) to runners.
func Registry() map[string]Runner {
	return map[string]Runner{
		"table1": func(seed uint64, _ Scale, _ *Obs) (*Result, error) {
			return RunTable1(DefaultTable1(seed))
		},
		"table2": func(seed uint64, _ Scale, _ *Obs) (*Result, error) {
			return RunTable2(DefaultTable2(seed))
		},
		"fig1": func(seed uint64, scale Scale, _ *Obs) (*Result, error) {
			cfg := DefaultFig1(seed)
			if scale == Quick {
				cfg.Hosts = 800
				cfg.MeanUptimeSeconds = 14400 // fewer sessions per host
			}
			return RunFig1(cfg)
		},
		"fig2": func(seed uint64, scale Scale, _ *Obs) (*Result, error) {
			cfg := DefaultFig2(seed)
			if scale == Quick {
				cfg.Hosts = 8000
				cfg.WindowProbes = 1 << 21
			}
			return RunFig2(cfg)
		},
		"fig3": func(seed uint64, scale Scale, _ *Obs) (*Result, error) {
			cfg := DefaultFig3(seed)
			if scale == Quick {
				cfg.WindowProbes = 1 << 20
			}
			return RunFig3(cfg)
		},
		"fig4": func(seed uint64, scale Scale, _ *Obs) (*Result, error) {
			cfg := DefaultFig4(seed)
			if scale == Quick {
				cfg.Pop = quickPopulation(seed)
				cfg.QuarantineOutside = 1000000
				cfg.QuarantineNAT = 1000000
				cfg.WindowProbes = 2e6
			}
			return RunFig4(cfg)
		},
		"fig5a": func(seed uint64, scale Scale, o *Obs) (*Result, error) {
			cfg := DefaultFig5(seed)
			if scale == Quick {
				quickFig5(&cfg, seed)
			}
			cfg.attachObs(o, "fig5a")
			return RunFig5a(cfg)
		},
		"fig5b": func(seed uint64, scale Scale, o *Obs) (*Result, error) {
			cfg := DefaultFig5(seed)
			if scale == Quick {
				quickFig5(&cfg, seed)
			}
			cfg.attachObs(o, "fig5b")
			return RunFig5b(cfg)
		},
		"fig5c": func(seed uint64, scale Scale, o *Obs) (*Result, error) {
			cfg := DefaultFig5(seed)
			if scale == Quick {
				quickFig5(&cfg, seed)
			}
			cfg.attachObs(o, "fig5c")
			return RunFig5c(cfg)
		},
		"ext-threshold": func(seed uint64, scale Scale, o *Obs) (*Result, error) {
			cfg := DefaultExtThreshold(seed)
			if scale == Quick {
				quickFig5(&cfg.Fig5, seed)
				cfg.HitListSize = 200
			}
			cfg.Fig5.attachObs(o, "ext-threshold")
			return RunExtThreshold(cfg)
		},
		"ext-natsweep": func(seed uint64, scale Scale, o *Obs) (*Result, error) {
			cfg := DefaultExtNATSweep(seed)
			if scale == Quick {
				quickFig5(&cfg.Fig5, seed)
				cfg.Fig5.RandomSensors = 1000
			}
			cfg.Fig5.attachObs(o, "ext-natsweep")
			return RunExtNATSweep(cfg)
		},
		"ext-containment": func(seed uint64, scale Scale, o *Obs) (*Result, error) {
			cfg := DefaultExtContainment(seed)
			if scale == Quick {
				quickFig5(&cfg.Fig5, seed)
				cfg.Fig5.RandomSensors = 1000
			}
			cfg.Fig5.attachObs(o, "ext-containment")
			return RunExtContainment(cfg)
		},
		"ext-faults": func(seed uint64, scale Scale, o *Obs) (*Result, error) {
			cfg := DefaultExtFaults(seed)
			if scale == Quick {
				quickFig5(&cfg.Fig5, seed)
				cfg.HitListSize = 200
			}
			cfg.Fig5.attachObs(o, "ext-faults")
			cfg.Sweep = o.sweepOptions()
			cfg.Checkpoint = o.checkpoint()
			return RunExtFaults(cfg)
		},
		"ext-witty": func(seed uint64, _ Scale, _ *Obs) (*Result, error) {
			return RunExtWitty(DefaultExtWitty(seed))
		},
		"ext-ims": func(seed uint64, scale Scale, _ *Obs) (*Result, error) {
			cfg := DefaultExtIMS(seed)
			if scale == Quick {
				cfg.Probes = 600000
			}
			return RunExtIMS(cfg)
		},
		"ext-prevalence": func(seed uint64, scale Scale, _ *Obs) (*Result, error) {
			cfg := DefaultExtPrevalence(seed)
			if scale == Quick {
				cfg.PopSize = 1000
				cfg.MaxSeconds = 150
			}
			return RunExtPrevalence(cfg)
		},
	}
}

// Names returns the registry ids in sorted order.
func Names() []string {
	return sortedKeys(Registry())
}

// Run executes one registered experiment by id, without observability.
func Run(id string, seed uint64, scale Scale) (*Result, error) {
	return RunObserved(id, seed, scale, nil)
}

// quickPopulation is a ~20k-host population with the same clustering shape
// as the paper's, for fast runs.
func quickPopulation(seed uint64) population.Config {
	return population.Config{
		Size:     20000,
		Slash8s:  30,
		Slash16s: 800,
		Anchors: []population.CoverageAnchor{
			{K: 4, Share: 0.1060},
			{K: 30, Share: 0.5049},
			{K: 200, Share: 0.9133},
			{K: 800, Share: 1.0},
		},
		Include192Slash8: true,
		Seed:             seed,
	}
}

func quickFig5(cfg *Fig5Config, seed uint64) {
	cfg.Pop = quickPopulation(seed)
	cfg.HitListSizes = []int{4, 30, 200, 800}
	cfg.RandomSensors = 2000
	cfg.MaxSeconds = 900
	// A smaller population at the paper's 10 probes/s would take hours of
	// simulated time to take off; scale the rate so density×rate matches
	// the full configuration's epidemic tempo.
	cfg.ScanRate = 10 * 134586 / 20000
}
