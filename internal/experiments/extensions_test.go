package experiments

import (
	"fmt"
	"testing"
)

func TestExtThresholdShapeCappedByCoverage(t *testing.T) {
	cfg := DefaultExtThreshold(21)
	quickFig5(&cfg.Fig5, 21)
	cfg.HitListSize = 200
	res, err := RunExtThreshold(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 1 || len(res.Tables[0].Rows) != len(cfg.Thresholds) {
		t.Fatalf("table shape wrong: %+v", res.Tables)
	}
	// Alerted fraction is monotone non-increasing in the threshold and
	// never reaches quorum: even threshold 1 is capped by the hit-list's
	// sensor coverage.
	prev := 1.0
	for _, th := range cfg.Thresholds {
		a := res.Metric(fmt.Sprintf("ext-threshold.%d.alerted", th))
		if a > prev+1e-9 {
			t.Errorf("alerted fraction increased with threshold %d: %v > %v", th, a, prev)
		}
		if a >= 0.5 {
			t.Errorf("threshold %d reached quorum (%.3f) despite the hit-list cap", th, a)
		}
		prev = a
	}
}

func TestExtNATSweepShapeMonotoneValue(t *testing.T) {
	cfg := DefaultExtNATSweep(22)
	quickFig5(&cfg.Fig5, 22)
	cfg.Fig5.RandomSensors = 1000
	// Fractions where the 25 random seeds are near-certain to include a
	// NAT'd host: at lower fractions the private network may simply never
	// get seeded (a real bootstrap effect — at this test's seed the 15%
	// row draws zero NAT'd seeds, a 1.7% event the note calls out).
	cfg.NATFractions = []float64{0.30, 0.45}
	res, err := RunExtNATSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The 192/8 sweep's full fleet must end up alerted at every NAT level,
	// and its first alert must come no later than the random fleet's (its
	// sensors sit directly in the leak).
	for _, nat := range cfg.NATFractions {
		sFinal := res.Metric(fmt.Sprintf("ext-natsweep.%.2f.sweep_final", nat))
		sFirst := res.Metric(fmt.Sprintf("ext-natsweep.%.2f.sweep_first", nat))
		rFirst := res.Metric(fmt.Sprintf("ext-natsweep.%.2f.random_first", nat))
		if sFinal < 0.9 {
			t.Errorf("NAT %.0f%%: sweep final alerted %.3f, want ≈1", 100*nat, sFinal)
		}
		if sFirst < 0 {
			t.Errorf("NAT %.0f%%: sweep never alerted", 100*nat)
			continue
		}
		if rFirst >= 0 && sFirst > rFirst+60 {
			t.Errorf("NAT %.0f%%: sweep first alert %.0fs far behind random %.0fs", 100*nat, sFirst, rFirst)
		}
	}
}

func TestExtPrevalenceShapeInsideOnly(t *testing.T) {
	cfg := DefaultExtPrevalence(23)
	cfg.PopSize = 1000
	cfg.MaxSeconds = 150
	res, err := RunExtPrevalence(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inside := res.Metric("ext-prevalence.inside_alarms")
	outside := res.Metric("ext-prevalence.outside_alarms")
	if inside == 0 {
		t.Error("in-hotspot prevalence sensor never extracted a signature")
	}
	if outside != 0 {
		t.Errorf("outside sensor alarmed %v times on unseen content", outside)
	}
}

func TestExtContainmentShapeEarlierDetectionSavesHosts(t *testing.T) {
	cfg := DefaultExtContainment(24)
	quickFig5(&cfg.Fig5, 24)
	cfg.Fig5.RandomSensors = 1000
	res, err := RunExtContainment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	none := res.Metric("ext-containment.no response.infected")
	sweep192 := res.Metric("ext-containment.placed 192/8.infected")
	random := res.Metric("ext-containment.randomly placed.infected")
	if none < 0.5 {
		t.Fatalf("uncontained outbreak only reached %.3f", none)
	}
	// Any containment beats none, and the topology-aware fleet (earliest
	// detection, per Fig 5c) must save at least as many hosts as the
	// random fleet.
	if sweep192 >= none || random >= none {
		t.Errorf("containment did not reduce infections: none=%.3f 192/8=%.3f random=%.3f",
			none, sweep192, random)
	}
	if sweep192 > random+0.02 {
		t.Errorf("192/8-triggered containment (%.3f infected) worse than random-triggered (%.3f)",
			sweep192, random)
	}
	if at := res.Metric("ext-containment.placed 192/8.engaged_at"); at < 0 {
		t.Error("192/8 fleet never engaged containment")
	}
}

func TestExtWittyShapeTenPercentCold(t *testing.T) {
	res, err := RunExtWitty(DefaultExtWitty(1))
	if err != nil {
		t.Fatal(err)
	}
	frac := res.Metric("ext-witty.unreachable_fraction")
	if frac < 0.08 || frac > 0.12 {
		t.Errorf("unreachable fraction = %.4f, want ≈0.10", frac)
	}
	if len(res.Tables) != 1 || len(res.Tables[0].Rows) != 11 {
		t.Fatalf("table shape wrong: %+v", res.Tables)
	}
}

func TestExtIMSShapeActiveResponseMatters(t *testing.T) {
	cfg := DefaultExtIMS(25)
	cfg.Probes = 600000
	res, err := RunExtIMS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// UDP (Slammer): payloads and signatures in both modes.
	if res.Metric("ext-ims.slammer.passive.payloads") == 0 ||
		res.Metric("ext-ims.slammer.active-synack.payloads") == 0 {
		t.Error("Slammer payloads missing in some mode")
	}
	// TCP (CodeRedII): payloads only with active response; signatures
	// follow payloads.
	if got := res.Metric("ext-ims.codered2.passive.payloads"); got != 0 {
		t.Errorf("passive telescope obtained %v TCP payloads", got)
	}
	if res.Metric("ext-ims.codered2.active-synack.payloads") == 0 {
		t.Error("active responder obtained no TCP payloads")
	}
	if got := res.Metric("ext-ims.codered2.passive.signatures"); got != 0 {
		t.Errorf("passive telescope extracted %v TCP signatures", got)
	}
	if res.Metric("ext-ims.codered2.active-synack.signatures") == 0 {
		t.Error("active responder extracted no CRII signature")
	}
}

func TestExtValidation(t *testing.T) {
	if _, err := RunExtThreshold(ExtThresholdConfig{}); err == nil {
		t.Error("empty threshold sweep accepted")
	}
	if _, err := RunExtNATSweep(ExtNATSweepConfig{}); err == nil {
		t.Error("empty NAT sweep accepted")
	}
	if _, err := RunExtPrevalence(ExtPrevalenceConfig{}); err == nil {
		t.Error("empty prevalence config accepted")
	}
	if _, err := RunExtContainment(ExtContainmentConfig{}); err == nil {
		t.Error("empty containment config accepted")
	}
	if _, err := RunExtContainment(ExtContainmentConfig{TriggerFraction: 0.1, Drop: 2}); err == nil {
		t.Error("invalid containment drop accepted")
	}
}
