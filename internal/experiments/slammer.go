package experiments

import (
	"errors"

	"repro/internal/sensor"
)

// blockIndex is an O(1) membership test from a 32-bit state to a monitored
// block, exploiting the fact that the IMS blocks live in distinct /8s. It
// is the hot-path structure for walking hundreds of millions of LCG states.
type blockIndex struct {
	blocks  []sensor.Block
	byOctet [256]int8 // top octet → block index, -1 if unmonitored
	lo, hi  []uint32
	base    []uint32 // first /24 index per block
	slots   []int    // /24 slot count per block
}

func newBlockIndex(blocks []sensor.Block) (*blockIndex, error) {
	bi := &blockIndex{blocks: blocks}
	for i := range bi.byOctet {
		bi.byOctet[i] = -1
	}
	for i, b := range blocks {
		o := b.Prefix.First().Slash8()
		if b.Prefix.Bits() < 8 {
			return nil, errors.New("experiments: blocks wider than /8 unsupported")
		}
		if bi.byOctet[o] != -1 {
			return nil, errors.New("experiments: two blocks share a /8; blockIndex requires distinct top octets")
		}
		bi.byOctet[o] = int8(i)
		bi.lo = append(bi.lo, uint32(b.Prefix.First()))
		bi.hi = append(bi.hi, uint32(b.Prefix.Last()))
		bi.base = append(bi.base, b.Prefix.First().Slash24())
		bi.slots = append(bi.slots, b.Prefix.Slash24s())
	}
	return bi, nil
}

// locate returns the block index and /24 slot for state, or ok=false when
// the state is unmonitored.
func (bi *blockIndex) locate(state uint32) (block, slot int, ok bool) {
	b := bi.byOctet[state>>24]
	if b < 0 {
		return 0, 0, false
	}
	i := int(b)
	if state < bi.lo[i] || state > bi.hi[i] {
		return 0, 0, false
	}
	s := int(state>>8) - int(bi.base[i])
	if s < 0 || s >= bi.slots[i] {
		s = 0 // sub-/24 blocks collapse to a single slot
	}
	return i, s, true
}

// totalSlots returns the total /24 slot count across blocks.
func (bi *blockIndex) totalSlots() int {
	n := 0
	for _, s := range bi.slots {
		n += s
	}
	return n
}
