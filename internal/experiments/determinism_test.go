package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestFig2ByteIdenticalAcrossRuns pins the byte-identity contract on the
// Figure 2 driver: the same configuration must serialize to the same
// bytes, run after run, in the same process — where Go randomizes map
// iteration order per range statement. The short-cycle and clustered-seed
// passes accumulate floating-point contributions per monitored /24 out of
// map-keyed touch counts; iterating those maps unsorted would let the
// (non-associative) addition order vary. The accumulation iterates sorted
// keys (sortedTouched) precisely so this test can demand equality down to
// the last bit.
func TestFig2ByteIdenticalAcrossRuns(t *testing.T) {
	cfg := DefaultFig2(11)
	cfg.Hosts = 4000
	cfg.WindowProbes = 1 << 21

	run := func() []byte {
		res, err := RunFig2(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteMarkdown(&buf, "fig2", res); err != nil {
			t.Fatal(err)
		}
		j, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return append(buf.Bytes(), j...)
	}

	first := run()
	for i := 0; i < 3; i++ {
		if next := run(); !bytes.Equal(first, next) {
			t.Fatalf("run %d serialized differently from run 0 (len %d vs %d)", i+1, len(next), len(first))
		}
	}
}
