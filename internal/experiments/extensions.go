package experiments

// Extension experiments beyond the paper's published tables and figures,
// following its discussion section: the alert-threshold sensitivity of
// quorum detection, the effect of growing NAT adoption (the paper calls its
// 15% estimate crude and likely low), and content-prevalence (EarlyBird-
// style) detection under hit-list hotspots.

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/detect"
	"repro/internal/ipv4"
	"repro/internal/payload"
	"repro/internal/population"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/worm"
)

// ExtThresholdConfig parameterizes the alert-threshold sweep.
type ExtThresholdConfig struct {
	// Fig5 carries the population and outbreak parameters.
	Fig5 Fig5Config
	// HitListSize fixes the worm's list length.
	HitListSize int
	// Thresholds are the per-sensor alert thresholds swept.
	Thresholds []uint64
}

// DefaultExtThreshold uses the paper's 1000-prefix hit-list (the most
// interesting regime: >90% infected, ~20% alerted at threshold 5).
func DefaultExtThreshold(seed uint64) ExtThresholdConfig {
	return ExtThresholdConfig{
		Fig5:        DefaultFig5(seed),
		HitListSize: 1000,
		Thresholds:  []uint64{1, 5, 20, 100},
	}
}

// RunExtThreshold asks: can a quorum detector be rescued by lowering the
// alert threshold? No — sensors outside the hit-list observe literally
// zero probes, so the alerted fraction is capped by the list's sensor
// coverage no matter the threshold. The sweep runs concurrently.
func RunExtThreshold(cfg ExtThresholdConfig) (*Result, error) {
	if len(cfg.Thresholds) == 0 {
		return nil, errors.New("experiments: no thresholds to sweep")
	}
	pop, err := population.Synthesize(cfg.Fig5.Pop)
	if err != nil {
		return nil, err
	}
	prefixes, cover := worm.BuildGreedySlash16HitList(pop.Addrs(false), cfg.HitListSize)
	set := ipv4.SetOfPrefixes(prefixes...)
	var slash16s []uint32
	for _, sc := range pop.Slash16Histogram() {
		slash16s = append(slash16s, sc.Network)
	}
	placements := detect.OnePerSlash16(slash16s, cfg.Fig5.Seed+3)

	type outcome struct {
		threshold uint64
		alerted   float64
		infected  float64
	}
	var done atomic.Int64
	outcomes, err := sweep.Map(cfg.Fig5.ctx(), cfg.Thresholds,
		func(_ context.Context, threshold uint64) (outcome, error) {
			fleet, err := detect.NewThresholdFleet(placements, threshold)
			if err != nil {
				return outcome{}, err
			}
			res, err := sim.RunFast(sim.FastConfig{
				Pop:         pop,
				Model:       &sim.HitListModel{List: set},
				ScanRate:    cfg.Fig5.ScanRate,
				TickSeconds: 1,
				MaxSeconds:  cfg.Fig5.MaxSeconds,
				SeedHosts:   cfg.Fig5.SeedHosts,
				Seed:        cfg.Fig5.Seed + 31,
				Sensors:     fleet,
				SensorSet:   fleet.Union(),
				Metrics:     cfg.Fig5.Metrics,
				// Sweep points run concurrently against one registry; the
				// label keeps each point's series distinct.
				MetricLabels: []string{"threshold", fmt.Sprintf("%d", threshold)},
			})
			if err != nil {
				return outcome{}, err
			}
			cfg.Fig5.progress(int(done.Add(1)), len(cfg.Thresholds))
			return outcome{
				threshold: threshold,
				alerted:   fleet.AlertedFraction(),
				infected:  res.FractionInfected(),
			}, nil
		}, sweep.Options{})
	if err != nil {
		return nil, err
	}

	res := &Result{}
	table := Table{
		ID:      "Extension: threshold sweep",
		Title:   fmt.Sprintf("Alert-threshold sensitivity (%d-prefix hit-list covering %.1f%%)", cfg.HitListSize, 100*cover),
		Columns: []string{"Threshold", "% infected", "% sensors alerted", "Quorum(50%)"},
	}
	for _, o := range outcomes {
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%d", o.threshold),
			fmt.Sprintf("%.1f", 100*o.infected),
			fmt.Sprintf("%.1f", 100*o.alerted),
			fmt.Sprintf("%v", o.alerted >= 0.5),
		})
		res.SetMetric(fmt.Sprintf("ext-threshold.%d.alerted", o.threshold), o.alerted)
	}
	res.Tables = append(res.Tables, table)
	res.Notef("the alerted fraction saturates at the hit-list's sensor coverage: thresholds cannot restore visibility lost to hotspots")
	return res, nil
}

// ExtNATSweepConfig parameterizes the NAT-adoption sweep.
type ExtNATSweepConfig struct {
	Fig5         Fig5Config
	NATFractions []float64
}

// DefaultExtNATSweep sweeps beyond the paper's (self-described crude) 15%.
func DefaultExtNATSweep(seed uint64) ExtNATSweepConfig {
	return ExtNATSweepConfig{
		Fig5:         DefaultFig5(seed),
		NATFractions: []float64{0.05, 0.15, 0.30, 0.45},
	}
}

// RunExtNATSweep measures how the value of instrumenting 192/8 (and the
// blindness of random placement) grows with NAT adoption.
func RunExtNATSweep(cfg ExtNATSweepConfig) (*Result, error) {
	if len(cfg.NATFractions) == 0 {
		return nil, errors.New("experiments: no NAT fractions to sweep")
	}
	type placementOutcome struct {
		at20       float64
		final      float64
		firstAlert float64 // time the first sensor alerted (-1 if never)
	}
	type outcome struct {
		nat      float64
		sweep    placementOutcome
		random   placementOutcome
		timeTo20 float64
	}
	var done atomic.Int64
	outcomes, err := sweep.Map(cfg.Fig5.ctx(), cfg.NATFractions,
		func(_ context.Context, nat float64) (outcome, error) {
			pop, err := population.Synthesize(cfg.Fig5.Pop)
			if err != nil {
				return outcome{}, err
			}
			if err := pop.AssignNAT(nat, cfg.Fig5.HostsPerSite, cfg.Fig5.Seed+5); err != nil {
				return outcome{}, err
			}
			var t20 float64
			run := func(placement string, prefixes []ipv4.Prefix) (placementOutcome, error) {
				fleet, err := detect.NewThresholdFleet(prefixes, cfg.Fig5.AlertThreshold)
				if err != nil {
					return placementOutcome{}, err
				}
				series := Series{}
				first := -1.0
				res, err := sim.RunFast(sim.FastConfig{
					Pop:         pop,
					Model:       sim.NewCodeRedIIModel(),
					ScanRate:    cfg.Fig5.ScanRate,
					TickSeconds: 1,
					MaxSeconds:  cfg.Fig5.MaxSeconds,
					SeedHosts:   cfg.Fig5.SeedHosts,
					Seed:        cfg.Fig5.Seed + 9,
					Sensors:     fleet,
					SensorSet:   fleet.Union(),
					Metrics:     cfg.Fig5.Metrics,
					// NAT points run concurrently against one registry, and
					// each point runs two placements; both labels are needed
					// to keep the series distinct.
					MetricLabels: []string{
						"nat", fmt.Sprintf("%.2f", nat), "placement", placement,
					},
					OnTick: func(ti sim.TickInfo) bool {
						series.X = append(series.X, ti.Time)
						series.Y = append(series.Y, 100*fleet.AlertedFraction())
						if first < 0 && fleet.NumAlerted() > 0 {
							first = ti.Time
						}
						return true
					},
				})
				if err != nil {
					return placementOutcome{}, err
				}
				t20, _ = res.TimeToFraction(0.20)
				return placementOutcome{
					at20:       alertFractionAt(series, t20),
					final:      fleet.AlertedFraction(),
					firstAlert: first,
				}, nil
			}
			sweepOut, err := run("192-8", detect.Slash16SweepOfSlash8(192, []uint32{168}, cfg.Fig5.Seed+8))
			if err != nil {
				return outcome{}, err
			}
			randomPrefixes, err := detect.RandomSlash24s(cfg.Fig5.RandomSensors, cfg.Fig5.Seed+6, nil)
			if err != nil {
				return outcome{}, err
			}
			randomOut, err := run("random", randomPrefixes)
			if err != nil {
				return outcome{}, err
			}
			cfg.Fig5.progress(int(done.Add(1)), len(cfg.NATFractions))
			return outcome{nat: nat, sweep: sweepOut, random: randomOut, timeTo20: t20}, nil
		}, sweep.Options{})
	if err != nil {
		return nil, err
	}

	res := &Result{}
	table := Table{
		ID:    "Extension: NAT adoption sweep",
		Title: "Sensor visibility vs NAT'd population fraction (CodeRedII-type worm)",
		Columns: []string{
			"NAT fraction", "192/8 alerted@20% / final %", "random alerted@20% / final %",
			"192/8 first alert s", "random first alert s", "t(20%) s",
		},
	}
	for _, o := range outcomes {
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%.0f%%", 100*o.nat),
			fmt.Sprintf("%.1f / %.1f", 100*o.sweep.at20, 100*o.sweep.final),
			fmt.Sprintf("%.1f / %.1f", 100*o.random.at20, 100*o.random.final),
			fmt.Sprintf("%.0f", o.sweep.firstAlert),
			fmt.Sprintf("%.0f", o.random.firstAlert),
			fmt.Sprintf("%.0f", o.timeTo20),
		})
		res.SetMetric(fmt.Sprintf("ext-natsweep.%.2f.sweep", o.nat), o.sweep.at20)
		res.SetMetric(fmt.Sprintf("ext-natsweep.%.2f.random", o.nat), o.random.at20)
		res.SetMetric(fmt.Sprintf("ext-natsweep.%.2f.sweep_final", o.nat), o.sweep.final)
		res.SetMetric(fmt.Sprintf("ext-natsweep.%.2f.random_final", o.nat), o.random.final)
		res.SetMetric(fmt.Sprintf("ext-natsweep.%.2f.sweep_first", o.nat), o.sweep.firstAlert)
		res.SetMetric(fmt.Sprintf("ext-natsweep.%.2f.random_first", o.nat), o.random.firstAlert)
	}
	res.Tables = append(res.Tables, table)
	res.Notef("greater NAT adoption strengthens the 192/8 hotspot: topology keeps shifting visibility toward sensors near private space")
	res.Notef("low NAT fractions can show a bootstrap effect: with 25 random seeds the private network may never receive an infected host, and the leak never starts")
	return res, nil
}

// ExtPrevalenceConfig parameterizes the content-prevalence study.
type ExtPrevalenceConfig struct {
	// PopSize and HitListSlash16s shape the small exact-driver outbreak.
	PopSize         int
	HitListSlash16s int
	ScanRate        float64
	MaxSeconds      float64
	SeedHosts       int
	Earlybird       payload.EarlybirdConfig
	Seed            uint64
	// Workers parallelizes the exact driver's classification phase (0 =
	// GOMAXPROCS, 1 = serial, negative rejected); the study's results are
	// identical for every value — see sim.ExactConfig.Workers.
	Workers int
}

// DefaultExtPrevalence returns the content-prevalence configuration.
func DefaultExtPrevalence(seed uint64) ExtPrevalenceConfig {
	eb := payload.DefaultEarlybirdConfig()
	eb.SampleRate = 16
	return ExtPrevalenceConfig{
		PopSize:         2000,
		HitListSlash16s: 40,
		ScanRate:        4000,
		MaxSeconds:      300,
		SeedHosts:       10,
		Earlybird:       eb,
		Seed:            seed,
	}
}

// RunExtPrevalence runs a hit-list worm with real payloads through the
// probe-exact driver past two EarlyBird content-prevalence sensors — one
// monitoring space inside the worm's hit-list, one outside. The in-hotspot
// sensor extracts a signature quickly; the outside sensor never sees the
// content at all: content-prevalence systems inherit the hotspot blindness
// of their vantage points (the paper's Section 5 claim about
// prevalence-based systems, demonstrated end to end).
func RunExtPrevalence(cfg ExtPrevalenceConfig) (*Result, error) {
	if cfg.PopSize <= 0 || cfg.HitListSlash16s <= 0 {
		return nil, errors.New("experiments: prevalence config must be positive")
	}
	pop, err := population.Synthesize(population.Config{
		Size:     cfg.PopSize,
		Slash8s:  10,
		Slash16s: cfg.HitListSlash16s,
		Seed:     cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	prefixes, _ := worm.BuildGreedySlash16HitList(pop.Addrs(false), cfg.HitListSlash16s)
	set := ipv4.SetOfPrefixes(prefixes...)

	// Sensors: a /16 inside the hit-list's densest prefix, and a /16 in
	// unrelated space.
	inPrefix, err := ipv4.NewPrefix(prefixes[0].First(), 16)
	if err != nil {
		return nil, err
	}
	outPrefix := ipv4.MustParsePrefix("41.99.0.0/16")
	if set.Contains(outPrefix.First()) {
		return nil, errors.New("experiments: outside sensor landed inside the hit-list")
	}

	inSensor, err := payload.NewEarlybird(cfg.Earlybird)
	if err != nil {
		return nil, err
	}
	outSensor, err := payload.NewEarlybird(cfg.Earlybird)
	if err != nil {
		return nil, err
	}
	wormContent := payload.DefaultWormPayload("hitlist-worm")

	var instance uint64
	firstAlarm := -1.0 // sentinel: no alarm recorded yet
	now := 0.0
	_, err = sim.RunExact(sim.ExactConfig{
		Pop:         pop,
		Factory:     worm.HitListFactory{ListSet: set},
		ScanRate:    cfg.ScanRate,
		TickSeconds: 1,
		MaxSeconds:  cfg.MaxSeconds,
		SeedHosts:   cfg.SeedHosts,
		Seed:        cfg.Seed + 1,
		Workers:     cfg.Workers,
		// The signature question is settled long before saturation; do not
		// simulate the saturated tail probe-by-probe.
		StopWhenInfected: cfg.PopSize / 2,
		OnProbe: func(src, dst ipv4.Addr) {
			instance++
			if inPrefix.Contains(dst) {
				if fired := inSensor.Observe(src, dst, wormContent.Instance(instance)); len(fired) > 0 && firstAlarm < 0 {
					firstAlarm = now
				}
			}
			if outPrefix.Contains(dst) {
				outSensor.Observe(src, dst, wormContent.Instance(instance))
			}
		},
		OnTick: func(ti sim.TickInfo) bool {
			now = ti.Time
			return true
		},
	})
	if err != nil {
		return nil, err
	}

	res := &Result{}
	table := Table{
		ID:      "Extension: content prevalence",
		Title:   "EarlyBird-style sensors inside vs outside a hit-list worm's target space",
		Columns: []string{"Sensor", "Signature alarms", "First alarm (s)"},
	}
	first := "—"
	if inSensor.Alarms() > 0 {
		first = fmt.Sprintf("%.0f", firstAlarm)
	}
	table.Rows = append(table.Rows, []string{"inside hit-list", fmt.Sprintf("%d", inSensor.Alarms()), first})
	table.Rows = append(table.Rows, []string{"outside hit-list", fmt.Sprintf("%d", outSensor.Alarms()), "—"})
	res.Tables = append(res.Tables, table)
	res.SetMetric("ext-prevalence.inside_alarms", float64(inSensor.Alarms()))
	res.SetMetric("ext-prevalence.outside_alarms", float64(outSensor.Alarms()))
	res.Notef("content-prevalence detection inherits the vantage point's hotspot: invariant content never reaches the outside sensor")
	return res, nil
}
