package experiments

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/ipv4"
	"repro/internal/population"
	"repro/internal/rng"
	"repro/internal/sensor"
	"repro/internal/worm"
)

// Fig4Config parameterizes the CodeRedII environmental-factor study.
type Fig4Config struct {
	// Pop is the vulnerable/infected population configuration.
	Pop population.Config
	// NATFraction of hosts sit behind NATs in 192.168/16, grouped in sites
	// of HostsPerSite.
	NATFraction  float64
	HostsPerSite int
	// WindowProbes is the number of probes each infected host emits over
	// the observation window (CRII probes far more slowly than Slammer).
	WindowProbes float64
	// QuarantineOutside / QuarantineNAT are the probe counts of the two
	// honeypot runs (the paper recorded 7,567,093 and 7,567,361 attempts).
	QuarantineOutside uint64
	QuarantineNAT     uint64
	// Blocks are the monitored darknets.
	Blocks []sensor.Block
	// Seed drives all randomness.
	Seed uint64
}

// DefaultFig4 returns the Figure 4 configuration.
func DefaultFig4(seed uint64) Fig4Config {
	return Fig4Config{
		Pop:               population.DefaultCodeRedII(seed),
		NATFraction:       0.15,
		HostsPerSite:      4,
		WindowProbes:      2e6,
		QuarantineOutside: 7567093,
		QuarantineNAT:     7567361,
		Blocks:            sensor.DefaultIMSBlocks(),
		Seed:              seed,
	}
}

// RunFig4 reproduces Figure 4: (a) unique CodeRedII sources per destination
// /24 across the IMS blocks, with the M-block hotspot produced by NAT'd
// hosts' local preference leaking into public 192/8; (b, c) the two
// quarantined-honeypot runs, one infected host outside 192/8 and one at
// 192.168.0.100.
func RunFig4(cfg Fig4Config) (*Result, error) {
	if cfg.WindowProbes <= 0 {
		return nil, errors.New("experiments: fig4 needs a window")
	}
	if cfg.NATFraction < 0 || cfg.NATFraction > 1 {
		return nil, errors.New("experiments: fig4 NAT fraction out of range")
	}
	pop, err := population.Synthesize(cfg.Pop)
	if err != nil {
		return nil, err
	}
	if err := pop.AssignNAT(cfg.NATFraction, cfg.HostsPerSite, cfg.Seed+1); err != nil {
		return nil, err
	}
	res := &Result{}
	if err := fig4Aggregate(cfg, pop, res); err != nil {
		return nil, err
	}
	fig4Quarantine(cfg, res)
	return res, nil
}

// fig4Aggregate computes Figure 4(a) analytically per /24 with sampling
// noise: every infected host's touch probability on a /24 decomposes over
// CRII's three mixture branches, so unique-source counts are sums of
// binomials over host categories (same /16, same /8, elsewhere, NAT'd).
func fig4Aggregate(cfg Fig4Config, pop *population.Population, res *Result) error {
	r := rng.NewXoshiro(cfg.Seed + 2)
	// Host category histograms.
	per16 := make(map[uint32]uint64)
	per8 := make(map[uint32]uint64)
	var nNAT, nPublic uint64
	for _, h := range pop.Hosts() {
		if h.IsNATed() {
			nNAT++
			continue
		}
		nPublic++
		per16[h.Addr.Slash16()]++
		per8[h.Addr.Slash8()]++
	}

	w := cfg.WindowProbes
	full := float64(uint64(1) << 32)
	leak8 := float64(uint64(1)<<24 - 1<<16) // public 192/8 addresses

	fig := Figure{
		ID:     "Figure 4a",
		Title:  "Observed unique CodeRedII source IPs by destination /24",
		XLabel: "destination /24 (grouped by sensor block)",
		YLabel: "unique source IPs",
	}
	var concat []uint64
	var mBlockMean, otherMean float64
	var mSlots, otherSlots int
	for _, blk := range cfg.Blocks {
		s := Series{Name: blk.String()}
		base := blk.Prefix.First().Slash24()
		for slot := 0; slot < blk.Prefix.Slash24s(); slot++ {
			addr24 := ipv4.Addr((base + uint32(slot)) << 8)
			span := 256.0
			if n := blk.Prefix.NumAddrs(); n < 256 {
				span = float64(n)
			}
			o8, o16 := addr24.Slash8(), addr24.Slash16()

			// Per-host touch rates by category.
			lamRand := w * span * 0.125 / full
			lam8 := w * span * 0.5 / float64(uint64(1)<<24)
			lam16 := w * span * 0.375 / float64(uint64(1)<<16)
			lamNAT := lamRand
			if o8 == 192 {
				lamNAT += w * span * 0.5 / leak8
			}

			n16 := per16[o16]
			n8only := per8[o8] - n16
			nElse := nPublic - per8[o8]

			u := r.Binomial(n16, 1-math.Exp(-(lamRand+lam8+lam16)))
			u += r.Binomial(n8only, 1-math.Exp(-(lamRand+lam8)))
			u += r.Binomial(nElse, 1-math.Exp(-lamRand))
			u += r.Binomial(nNAT, 1-math.Exp(-lamNAT))

			s.X = append(s.X, float64(base)+float64(slot))
			s.Y = append(s.Y, float64(u))
			concat = append(concat, u)
			if blk.Label == "M" {
				mBlockMean += float64(u)
				mSlots++
			} else {
				otherMean += float64(u)
				otherSlots++
			}
		}
		fig.Series = append(fig.Series, s)
	}
	res.Figures = append(res.Figures, fig)

	if mSlots == 0 || otherSlots == 0 {
		return errors.New("experiments: fig4 geometry lacks M or comparison blocks")
	}
	mBlockMean /= float64(mSlots)
	otherMean /= float64(otherSlots)
	res.SetMetric("fig4a.m_mean", mBlockMean)
	res.SetMetric("fig4a.other_mean", otherMean)
	rep := core.Analyze(concat)
	res.Notef("fig4a: M block mean uniq/24 = %.0f vs other blocks %.0f (%.1fx hotspot); NAT'd hosts = %d",
		mBlockMean, otherMean, mBlockMean/math.Max(1, otherMean), nNAT)
	res.Notef("fig4a hotspot analysis: chi2=%.0f (df=%d), Gini=%.3f, hotspots(≥5x)=%d",
		rep.ChiSquare, rep.DF, rep.Gini, len(rep.Hotspots))
	return nil
}

// fig4Quarantine runs the two honeypot experiments probe-exactly.
func fig4Quarantine(cfg Fig4Config, res *Result) {
	runs := []struct {
		id, title string
		own       ipv4.Addr
		probes    uint64
	}{
		{id: "Figure 4b", title: "Quarantined CodeRedII host outside 192/8: attempts by /24",
			own: ipv4.MustParseAddr("18.31.0.5"), probes: cfg.QuarantineOutside},
		{id: "Figure 4c", title: "Quarantined CodeRedII host at 192.168.0.100: attempts by /24",
			own: ipv4.MustParseAddr("192.168.0.100"), probes: cfg.QuarantineNAT},
	}
	for ri, run := range runs {
		fleet := sensor.MustNewFleet(cfg.Blocks)
		gen := worm.NewCodeRedII(run.own, uint32(rng.Mix64(cfg.Seed+uint64(ri)+7)))
		var monitored uint64
		for i := uint64(0); i < run.probes; i++ {
			dst := gen.Next()
			if dst.IsPrivate() {
				continue // never leaves the NAT site
			}
			if fleet.Observe(run.own, dst) {
				monitored++
			}
		}
		fig := Figure{ID: run.id, Title: run.title,
			XLabel: "destination /24 (grouped by sensor block)",
			YLabel: "infection attempts"}
		var mTotal uint64
		for _, sn := range fleet.Sensors() {
			s := Series{Name: sn.Block().String()}
			base := sn.Block().Prefix.First().Slash24()
			for slot, st := range sn.PerSlash24() {
				s.X = append(s.X, float64(base)+float64(slot))
				s.Y = append(s.Y, float64(st.Attempts))
			}
			fig.Series = append(fig.Series, s)
			if sn.Block().Label == "M" {
				mTotal = sn.TotalAttempts()
			}
		}
		res.Figures = append(res.Figures, fig)
		res.SetMetric(run.id+".m_attempts", float64(mTotal))
		res.Notef("%s: %d probes, %d landed on darknets, %d on the M block",
			run.id, run.probes, monitored, mTotal)
	}
	res.Notes = append(res.Notes, fmt.Sprintf(
		"quarantine contrast: the NAT'd host's /8 preference floods public 192/8 (M block), the outside host barely reaches it"))
}
