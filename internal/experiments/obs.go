package experiments

import (
	"context"
	"fmt"

	"repro/internal/obs"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// Obs carries the observability context for an experiment run: a metric
// registry, a tracer, and a progress callback. A nil *Obs (and any nil
// field) disables the corresponding facility — runners call the helper
// methods unconditionally.
type Obs struct {
	// Registry receives experiment and simulation metrics.
	Registry *obs.Registry
	// Tracer records one span per experiment (and any sub-spans runners
	// choose to open).
	Tracer *obs.Tracer
	// Progress receives coarse completion updates: stage names an
	// experiment-specific unit of work ("fig5a", "ext-threshold"), done and
	// total count completed sub-runs. Sweeps that run concurrently invoke
	// it from multiple goroutines; handlers must be safe for that.
	Progress func(stage string, done, total int)
	// Trace, when non-nil, is the flight recorder experiment runs attach to
	// their simulations; sweep-style experiments scope it per grid point
	// (trace.Recorder.Scoped) so interleaved events stay attributable.
	Trace *trace.Recorder
	// Sweep carries resilience options (retries, backoff, per-task
	// deadlines, salvage) for experiments that run parameter sweeps; the
	// zero value is the plain fail-fast pool.
	Sweep sweep.Options
	// Checkpoint, when non-nil, is handed to sweep-style experiments so an
	// interrupted run resumes without recomputing finished grid points.
	Checkpoint *sweep.Checkpoint
	// Ctx, when non-nil, cancels in-flight sweeps: on SIGINT/SIGTERM the
	// CLIs cancel it so grid points finish or stop at tick boundaries,
	// completed points stay flushed in Checkpoint, and a rerun resumes
	// from there.
	Ctx context.Context
}

// registry returns the metric registry, or nil.
func (o *Obs) registry() *obs.Registry {
	if o == nil {
		return nil
	}
	return o.Registry
}

// trace returns the flight recorder, or nil.
func (o *Obs) trace() *trace.Recorder {
	if o == nil {
		return nil
	}
	return o.Trace
}

// span opens a tracer span, or returns a nil (inert) span.
func (o *Obs) span(name string) *obs.Span {
	if o == nil || o.Tracer == nil {
		return nil
	}
	return o.Tracer.Start(name)
}

// progress reports a completed unit of work.
func (o *Obs) progress(stage string, done, total int) {
	if o == nil || o.Progress == nil {
		return
	}
	o.Progress(stage, done, total)
}

// sweepOptions returns the sweep resilience options (zero value for nil).
func (o *Obs) sweepOptions() sweep.Options {
	if o == nil {
		return sweep.Options{}
	}
	return o.Sweep
}

// ctx returns the cancellation context (context.Background for nil).
func (o *Obs) ctx() context.Context {
	if o == nil || o.Ctx == nil {
		return context.Background()
	}
	return o.Ctx
}

// checkpoint returns the sweep checkpoint, or nil.
func (o *Obs) checkpoint() *sweep.Checkpoint {
	if o == nil {
		return nil
	}
	return o.Checkpoint
}

// progressFunc curries progress for config callbacks (Fig5Config.OnProgress
// and friends); it returns nil when no handler is installed so configs stay
// zero-cost.
func (o *Obs) progressFunc(stage string) func(done, total int) {
	if o == nil || o.Progress == nil {
		return nil
	}
	return func(done, total int) { o.progress(stage, done, total) }
}

// RunObserved executes one registered experiment by id with observability:
// the run is wrapped in an "experiment/<id>" span, counted in
// experiments_runs_total{id}, and threaded with o so sweep-style runners
// report progress and attach the registry to their simulations. A nil o is
// equivalent to Run.
func RunObserved(id string, seed uint64, scale Scale, o *Obs) (*Result, error) {
	r, ok := Registry()[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, Names())
	}
	o.registry().Counter("experiments_runs_total", "id", id).Inc()
	sp := o.span("experiment/" + id)
	res, err := r(seed, scale, o)
	sp.End()
	return res, err
}
