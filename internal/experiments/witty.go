package experiments

import (
	"errors"
	"fmt"

	"repro/internal/sensor"
	"repro/internal/worm"
)

// ExtWittyConfig parameterizes the Witty cold-spot study.
type ExtWittyConfig struct {
	// Blocks are the monitored darknets.
	Blocks []sensor.Block
}

// DefaultExtWitty uses the IMS geometry.
func DefaultExtWitty(uint64) ExtWittyConfig {
	return ExtWittyConfig{Blocks: sensor.DefaultIMSBlocks()}
}

// RunExtWitty computes, exactly and analytically, the Witty worm's
// permanent cold spots inside the monitored blocks: addresses that no
// Witty instance can ever generate, because of the worm's paired-output
// target construction (paper reference [13]). Unlike Slammer's cycle traps
// this bias is seed-independent — the hotspot structure is identical for
// every infected host, everywhere, forever.
func RunExtWitty(cfg ExtWittyConfig) (*Result, error) {
	if len(cfg.Blocks) == 0 {
		return nil, errors.New("experiments: no blocks")
	}
	res := &Result{}
	table := Table{
		ID:    "Extension: Witty cold spots",
		Title: "Addresses unreachable by any Witty instance, per monitored block",
		Columns: []string{
			"Block", "Addresses", "Unreachable", "Unreachable %",
			"Coldest /24 (dead addrs)", "Hottest /24 (dead addrs)",
		},
	}
	var totalAddrs, totalDead uint64
	// Reachability is a pure function of the /16 (the target's high 16
	// bits); cache the bitmap per /16.
	bitmaps := make(map[uint16][]bool)
	bitmap := func(hi uint16) []bool {
		if b, ok := bitmaps[hi]; ok {
			return b
		}
		b := worm.WittyReachableLo16(hi)
		bitmaps[hi] = b
		return b
	}
	for _, blk := range cfg.Blocks {
		var dead uint64
		worstDead, bestDead := -1, -1
		first, last := uint32(blk.Prefix.First()), uint32(blk.Prefix.Last())
		for addr24 := first >> 8; addr24 <= last>>8; addr24++ {
			bm := bitmap(uint16(addr24 >> 8))
			var d int
			for a := addr24 << 8; a <= addr24<<8|0xff; a++ {
				if a < first || a > last {
					continue
				}
				if !bm[uint16(a)] {
					d++
				}
			}
			dead += uint64(d)
			if worstDead < 0 || d > worstDead {
				worstDead = d
			}
			if bestDead < 0 || d < bestDead {
				bestDead = d
			}
		}
		n := blk.Prefix.NumAddrs()
		totalAddrs += n
		totalDead += dead
		table.Rows = append(table.Rows, []string{
			blk.String(),
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", dead),
			fmt.Sprintf("%.2f", 100*float64(dead)/float64(n)),
			fmt.Sprintf("%d", worstDead),
			fmt.Sprintf("%d", bestDead),
		})
	}
	res.Tables = append(res.Tables, table)
	frac := float64(totalDead) / float64(totalAddrs)
	res.SetMetric("ext-witty.unreachable_fraction", frac)
	res.Notef("%.2f%% of monitored addresses can never be probed by Witty — a seed-independent algorithmic hotspot from a full-period PRNG (Kumar et al. report ≈10%% for the real worm)",
		100*frac)
	res.Notef("per-/24 dead-address counts vary across each block: the cold-spot texture a darknet would measure")
	return res, nil
}
