package experiments

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/detect"
	"repro/internal/ipv4"
	"repro/internal/population"
	"repro/internal/sim"
	"repro/internal/sweep"
)

// ExtContainmentConfig parameterizes the detection-triggered containment
// study — the paper's closing argument ("it is critical to invest in local
// detection systems") quantified: how much of the population is saved when
// containment is triggered by each sensor placement?
type ExtContainmentConfig struct {
	Fig5 Fig5Config
	// TriggerFraction of the detector fleet must alert to engage
	// containment; Drop is the engaged per-probe drop probability
	// (Moore et al.'s Internet-quarantine content filtering).
	TriggerFraction float64
	Drop            float64
}

// DefaultExtContainment triggers on 10% of a fleet alerting, with 95%
// effective filtering.
func DefaultExtContainment(seed uint64) ExtContainmentConfig {
	return ExtContainmentConfig{
		Fig5:            DefaultFig5(seed),
		TriggerFraction: 0.10,
		Drop:            0.95,
	}
}

// RunExtContainment runs the CodeRedII/NAT outbreak of Fig 5c three times,
// with containment triggered by each placement strategy's fleet, and once
// with no response. Earlier detection ⇒ earlier containment ⇒ fewer hosts
// lost: the placement ordering of Fig 5c becomes an outcome difference.
func RunExtContainment(cfg ExtContainmentConfig) (*Result, error) {
	if cfg.TriggerFraction <= 0 || cfg.TriggerFraction > 1 {
		return nil, errors.New("experiments: trigger fraction out of (0,1]")
	}
	if cfg.Drop < 0 || cfg.Drop > 1 {
		return nil, errors.New("experiments: containment drop out of [0,1]")
	}
	pop, err := population.Synthesize(cfg.Fig5.Pop)
	if err != nil {
		return nil, err
	}
	if err := pop.AssignNAT(cfg.Fig5.NATFraction, cfg.Fig5.HostsPerSite, cfg.Fig5.Seed+5); err != nil {
		return nil, err
	}

	type variant struct {
		name  string
		build func() ([]ipv4.Prefix, error)
	}
	variants := []variant{
		{name: "no response", build: nil},
		{name: "randomly placed", build: func() ([]ipv4.Prefix, error) {
			return detect.RandomSlash24s(cfg.Fig5.RandomSensors, cfg.Fig5.Seed+6, nil)
		}},
		{name: "placed top-20 /8s", build: func() ([]ipv4.Prefix, error) {
			return detect.RandomSlash24sWithin(cfg.Fig5.RandomSensors, cfg.Fig5.Seed+7, pop.TopSlash8s(20), nil)
		}},
		{name: "placed 192/8", build: func() ([]ipv4.Prefix, error) {
			return detect.Slash16SweepOfSlash8(192, []uint32{168}, cfg.Fig5.Seed+8), nil
		}},
	}

	type outcome struct {
		name      string
		infected  float64
		engagedAt float64
	}
	outcomes, err := sweep.Map(cfg.Fig5.ctx(), variants,
		func(_ context.Context, v variant) (outcome, error) {
			simCfg := sim.FastConfig{
				Pop:         pop,
				Model:       sim.NewCodeRedIIModel(),
				ScanRate:    cfg.Fig5.ScanRate,
				TickSeconds: 1,
				MaxSeconds:  cfg.Fig5.MaxSeconds,
				SeedHosts:   cfg.Fig5.SeedHosts,
				Seed:        cfg.Fig5.Seed + 9, // identical outbreak across variants
			}
			var containment *sim.Containment
			if v.build != nil {
				prefixes, err := v.build()
				if err != nil {
					return outcome{}, err
				}
				fleet, err := detect.NewThresholdFleet(prefixes, cfg.Fig5.AlertThreshold)
				if err != nil {
					return outcome{}, err
				}
				simCfg.Sensors = fleet
				simCfg.SensorSet = fleet.Union()
				containment = &sim.Containment{
					Trigger: func() bool { return fleet.AlertedFraction() >= cfg.TriggerFraction },
					Drop:    cfg.Drop,
				}
				simCfg.Containment = containment
			}
			res, err := sim.RunFast(simCfg)
			if err != nil {
				return outcome{}, err
			}
			o := outcome{name: v.name, infected: res.FractionInfected(), engagedAt: -1}
			if containment != nil && containment.Engaged() {
				o.engagedAt = containment.EngagedAt
			}
			return o, nil
		}, sweep.Options{})
	if err != nil {
		return nil, err
	}

	res := &Result{}
	table := Table{
		ID:      "Extension: containment",
		Title:   fmt.Sprintf("Detection-triggered containment (trigger: %.0f%% of fleet, filter: %.0f%%)", 100*cfg.TriggerFraction, 100*cfg.Drop),
		Columns: []string{"Response fleet", "Containment engaged (s)", "Final infected %"},
	}
	for _, o := range outcomes {
		engaged := "never"
		if o.engagedAt >= 0 {
			engaged = fmt.Sprintf("%.0f", o.engagedAt)
		}
		table.Rows = append(table.Rows, []string{
			o.name, engaged, fmt.Sprintf("%.1f", 100*o.infected),
		})
		res.SetMetric("ext-containment."+o.name+".infected", o.infected)
		res.SetMetric("ext-containment."+o.name+".engaged_at", o.engagedAt)
	}
	res.Tables = append(res.Tables, table)
	res.Notef("earlier detection engages containment sooner and saves more of the population — the paper's case for local detection, quantified")
	return res, nil
}
