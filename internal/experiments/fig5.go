package experiments

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/detect"
	"repro/internal/ipv4"
	"repro/internal/obs"
	"repro/internal/population"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/worm"
)

// Fig5Config parameterizes the Section 5 outbreak simulations, matching the
// paper's platform: 10 probes/s per infected host, 25 random seed hosts,
// the CodeRedII vulnerable population (134,586 hosts clustered in 47 /8s).
type Fig5Config struct {
	// Pop is the vulnerable population configuration.
	Pop population.Config
	// ScanRate and SeedHosts follow the paper (10 probes/s, 25 hosts).
	ScanRate  float64
	SeedHosts int
	// HitListSizes are the /16 list lengths swept in Fig 5a/b.
	HitListSizes []int
	// AlertThreshold is the per-sensor alert threshold (5 payloads).
	AlertThreshold uint64
	// NATFraction and HostsPerSite configure Fig 5c's private-space hosts;
	// HostsPerSite ≤ 0 models 192.168/16 as one shared private network
	// (the paper's model — the worm spreads freely inside it).
	NATFraction  float64
	HostsPerSite int
	// RandomSensors is the fleet size for Fig 5c's random placements.
	RandomSensors int
	// MaxSeconds bounds each simulation.
	MaxSeconds float64
	// Seed drives all randomness.
	Seed uint64
	// OnProgress, when non-nil, is called after each completed sub-run
	// (hit-list size, placement, sweep point). Concurrent sweeps call it
	// from multiple goroutines.
	OnProgress func(done, total int)
	// Metrics, when non-nil, is attached to every simulation run and
	// sensor fleet (see DESIGN.md for the metric-name contract). Telemetry
	// never perturbs a run.
	Metrics *obs.Registry
	// Trace, when non-nil, is the flight recorder attached to simulation
	// runs; sweep-style experiments scope it per sub-run. Like Metrics,
	// attaching never perturbs a run.
	Trace *trace.Recorder
	// Ctx, when non-nil, cancels in-flight parameter sweeps (the CLIs wire
	// their signal context here): unstarted points are skipped, completed
	// ones keep their checkpoint entries, and a rerun resumes from there.
	Ctx context.Context
}

// attachObs wires an experiment Obs into the config's callback fields.
func (c *Fig5Config) attachObs(o *Obs, stage string) {
	c.OnProgress = o.progressFunc(stage)
	c.Metrics = o.registry()
	c.Trace = o.trace()
	c.Ctx = o.ctx()
}

// ctx returns the cancellation context (context.Background when unset).
func (c *Fig5Config) ctx() context.Context {
	if c.Ctx == nil {
		return context.Background()
	}
	return c.Ctx
}

// progress reports a completed sub-run, if a handler is installed.
func (c *Fig5Config) progress(done, total int) {
	if c.OnProgress != nil {
		c.OnProgress(done, total)
	}
}

// DefaultFig5 returns the paper's configuration.
func DefaultFig5(seed uint64) Fig5Config {
	return Fig5Config{
		Pop:            population.DefaultCodeRedII(seed),
		ScanRate:       10,
		SeedHosts:      25,
		HitListSizes:   []int{10, 100, 1000, 4481},
		AlertThreshold: 5,
		NATFraction:    0.15,
		HostsPerSite:   0, // one shared private network, as in the paper

		RandomSensors: 10000,
		MaxSeconds:    2000,
		Seed:          seed,
	}
}

// RunFig5a reproduces Figure 5a: infection rate for hit-lists of different
// lengths. Short lists infect their (small) covered population fastest;
// long lists reach more hosts but more slowly — vulnerable density is what
// sets the pace.
func RunFig5a(cfg Fig5Config) (*Result, error) {
	return runFig5HitLists(cfg, false)
}

// RunFig5b reproduces Figure 5b: the alert rate of 4,481 /24 detectors (one
// per vulnerable /16, threshold 5) during the same outbreaks. The paper's
// headline: with the 10-prefix list, >90% of its covered population is
// infected while barely any sensors alert — a quorum never forms.
func RunFig5b(cfg Fig5Config) (*Result, error) {
	return runFig5HitLists(cfg, true)
}

func runFig5HitLists(cfg Fig5Config, withSensors bool) (*Result, error) {
	if len(cfg.HitListSizes) == 0 {
		return nil, errors.New("experiments: no hit-list sizes")
	}
	pop, err := population.Synthesize(cfg.Pop)
	if err != nil {
		return nil, err
	}
	addrs := pop.Addrs(false)

	res := &Result{}
	id, title, ylabel := "Figure 5a", "Infection rate with different hit-list sizes", "% of vulnerable hosts infected"
	if withSensors {
		id, title, ylabel = "Figure 5b", "Sensor detection rate with different hit-list sizes", "% of sensors alerting"
	}
	fig := Figure{ID: id, Title: title, XLabel: "time (seconds)", YLabel: ylabel}

	// The Fig 5b fleet: one /24 detector in every vulnerable /16.
	var fleet *detect.ThresholdFleet
	if withSensors {
		var slash16s []uint32
		for _, sc := range pop.Slash16Histogram() {
			slash16s = append(slash16s, sc.Network)
		}
		fleet, err = detect.NewThresholdFleet(detect.OnePerSlash16(slash16s, cfg.Seed+3), cfg.AlertThreshold)
		if err != nil {
			return nil, err
		}
	}

	clock := &obs.SimClock{}
	if fleet != nil && cfg.Metrics != nil {
		fleet.Instrument(cfg.Metrics, clock)
	}
	for ki, k := range cfg.HitListSizes {
		prefixes, cover := worm.BuildGreedySlash16HitList(addrs, k)
		set := ipv4.SetOfPrefixes(prefixes...)
		var series Series
		series.Name = fmt.Sprintf("%d-prefix hit-list", k)
		simCfg := sim.FastConfig{
			Pop:         pop,
			Model:       &sim.HitListModel{List: set},
			ScanRate:    cfg.ScanRate,
			TickSeconds: 1,
			MaxSeconds:  cfg.MaxSeconds,
			SeedHosts:   cfg.SeedHosts,
			Seed:        cfg.Seed + uint64(k),
			Metrics:     cfg.Metrics,
			Clock:       clock,
		}
		if withSensors {
			fleet.Reset()
			simCfg.Sensors = fleet
			simCfg.SensorSet = fleet.Union()
			simCfg.OnTick = func(ti sim.TickInfo) bool {
				series.X = append(series.X, ti.Time)
				series.Y = append(series.Y, 100*fleet.AlertedFraction())
				return true
			}
		} else {
			simCfg.OnTick = func(ti sim.TickInfo) bool {
				series.X = append(series.X, ti.Time)
				series.Y = append(series.Y, 100*float64(ti.Infected)/float64(pop.Size()))
				return true
			}
		}
		result, err := sim.RunFast(simCfg)
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, series)
		if withSensors {
			res.SetMetric(fmt.Sprintf("fig5b.%d.alerted", k), fleet.AlertedFraction())
			res.SetMetric(fmt.Sprintf("fig5b.%d.infected", k), result.FractionInfected())
			quorum := 0.0
			if detect.QuorumReached(fleet, 0.5) {
				quorum = 1
			}
			res.SetMetric(fmt.Sprintf("fig5b.%d.quorum", k), quorum)
			res.Notef("%d-prefix list: covers %.2f%%; final infected %.1f%%, sensors alerted %.1f%% — quorum(50%%) reached: %v",
				k, 100*cover, 100*result.FractionInfected(), 100*fleet.AlertedFraction(),
				detect.QuorumReached(fleet, 0.5))
		} else {
			res.SetMetric(fmt.Sprintf("fig5a.%d.cover", k), cover)
			res.SetMetric(fmt.Sprintf("fig5a.%d.infected", k), result.FractionInfected())
			res.Notef("%d-prefix list: covers %.2f%% of the vulnerable population; infected %.1f%% by t=%.0fs",
				k, 100*cover, 100*result.FractionInfected(), result.Final.Time)
		}
		cfg.progress(ki+1, len(cfg.HitListSizes))
	}
	res.Figures = append(res.Figures, fig)
	return res, nil
}

// RunFig5c reproduces Figure 5c: a CodeRedII-type worm with 15% of the
// vulnerable population NAT'd into 192.168/16, detected by three sensor
// placements: 10,000 random /24s; 10,000 random /24s inside the top-20 /8s;
// and one /24 per /16 of 192/8 avoiding 192.168/16 (255 sensors).
func RunFig5c(cfg Fig5Config) (*Result, error) {
	pop, err := population.Synthesize(cfg.Pop)
	if err != nil {
		return nil, err
	}
	if err := pop.AssignNAT(cfg.NATFraction, cfg.HostsPerSite, cfg.Seed+5); err != nil {
		return nil, err
	}

	placements := []struct {
		name  string
		build func() ([]ipv4.Prefix, error)
	}{
		{name: "randomly placed", build: func() ([]ipv4.Prefix, error) {
			return detect.RandomSlash24s(cfg.RandomSensors, cfg.Seed+6, nil)
		}},
		{name: "placed top-20 /8s", build: func() ([]ipv4.Prefix, error) {
			return detect.RandomSlash24sWithin(cfg.RandomSensors, cfg.Seed+7, pop.TopSlash8s(20), nil)
		}},
		{name: "placed 192/8", build: func() ([]ipv4.Prefix, error) {
			return detect.Slash16SweepOfSlash8(192, []uint32{168}, cfg.Seed+8), nil
		}},
	}

	res := &Result{}
	fig := Figure{
		ID:     "Figure 5c",
		Title:  "Effect of sensor placement on alert generation (CodeRedII-type worm, 15% NAT'd)",
		XLabel: "time (seconds)",
		YLabel: "% of sensors alerting",
	}
	for pi, pl := range placements {
		prefixes, err := pl.build()
		if err != nil {
			return nil, err
		}
		fleet, err := detect.NewThresholdFleet(prefixes, cfg.AlertThreshold)
		if err != nil {
			return nil, err
		}
		clock := &obs.SimClock{}
		if cfg.Metrics != nil {
			fleet.Instrument(cfg.Metrics, clock)
		}
		series := Series{Name: pl.name}
		var infectedCurve Series
		simCfg := sim.FastConfig{
			Pop:         pop,
			Model:       sim.NewCodeRedIIModel(),
			ScanRate:    cfg.ScanRate,
			TickSeconds: 1,
			MaxSeconds:  cfg.MaxSeconds,
			SeedHosts:   cfg.SeedHosts,
			// Same dynamics seed across placements: sensors are passive, so
			// the three curves are measured against one outbreak.
			Seed:      cfg.Seed + 9,
			Sensors:   fleet,
			SensorSet: fleet.Union(),
			Metrics:   cfg.Metrics,
			Clock:     clock,
			OnTick: func(ti sim.TickInfo) bool {
				series.X = append(series.X, ti.Time)
				series.Y = append(series.Y, 100*fleet.AlertedFraction())
				infectedCurve.X = append(infectedCurve.X, ti.Time)
				infectedCurve.Y = append(infectedCurve.Y, 100*float64(ti.Infected)/float64(pop.Size()))
				return true
			},
		}
		result, err := sim.RunFast(simCfg)
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, series)
		if len(fig.Series) == 1 {
			infectedCurve.Name = "20% vulnerable infected (reference)"
			// Keep only the reference threshold as a flat marker series.
			for i := range infectedCurve.Y {
				if infectedCurve.Y[i] >= 20 {
					fig.Series = append(fig.Series, Series{
						Name: infectedCurve.Name,
						X:    []float64{infectedCurve.X[i], infectedCurve.X[i]},
						Y:    []float64{0, 100},
					})
					break
				}
			}
		}
		t20, ok20 := result.TimeToFraction(0.20)
		alertedAt20 := alertFractionAt(series, t20)
		res.SetMetric("fig5c."+pl.name+".alerted_at_20pct", alertedAt20)
		res.SetMetric("fig5c."+pl.name+".final_alerted", fleet.AlertedFraction())
		res.Notef("%s (%d sensors): final alerted %.1f%%; at 20%% infected (t=%.0fs, reached=%v) alerted=%.1f%%",
			pl.name, fleet.Size(), 100*fleet.AlertedFraction(), t20, ok20, 100*alertedAt20)
		cfg.progress(pi+1, len(placements))
	}
	res.Figures = append(res.Figures, fig)
	return res, nil
}

// alertFractionAt linearly scans a series for the last value at or before
// time t, as a fraction.
func alertFractionAt(s Series, t float64) float64 {
	var v float64
	for i := range s.X {
		if s.X[i] > t {
			break
		}
		v = s.Y[i] / 100
	}
	return v
}
