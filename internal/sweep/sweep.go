// Package sweep runs batches of independent simulation tasks across a
// bounded worker pool: parameter sweeps (hit-list sizes, NAT fractions,
// alert thresholds, seeds) that would otherwise run serially. Results
// return in task order regardless of completion order, and a context
// cancels stragglers.
//
// The pool is resilient by configuration: per-task retries with a
// deterministic backoff schedule, per-task deadlines, a Salvage mode that
// returns every completed result alongside a structured multi-error
// instead of aborting on the first failure, and a JSON checkpoint store
// (see Checkpoint) so an interrupted sweep resumes without recomputing
// finished points.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/trace"
)

// Task is one unit of sweep work; it must be safe to run concurrently with
// other tasks (tasks share nothing unless the caller arranges otherwise).
// Tasks that should honor Options.TaskTimeout must watch ctx.
type Task[R any] func(ctx context.Context) (R, error)

// Result pairs a task's output with its index and error.
type Result[R any] struct {
	// Index is the task's position in the input slice.
	Index int
	// Value is the task's output; valid when Err is nil.
	Value R
	// Err is the task's failure, or nil.
	Err error
	// Attempts is how many times the task ran (0 if it was never fed
	// because the sweep was cancelled first).
	Attempts int
}

// Options tunes the pool.
type Options struct {
	// Workers bounds concurrency; ≤0 means GOMAXPROCS.
	Workers int
	// FailFast cancels remaining tasks after the first error.
	FailFast bool
	// Retries is how many times a failed task is re-run (so a task runs at
	// most Retries+1 times). Cancellation is never retried.
	Retries int
	// Backoff returns the delay before retry attempt n (0-based). Nil
	// means retry immediately; ExpBackoff builds the usual deterministic
	// doubling schedule. The delay is cut short by sweep cancellation.
	Backoff func(retry int) time.Duration
	// TaskTimeout, when positive, bounds each attempt with a context
	// deadline. Tasks must watch their context for the deadline to bite.
	TaskTimeout time.Duration
	// Salvage keeps going after failures and returns the partial results
	// in task order together with a *MultiError listing every failed task,
	// instead of the first error. FailFast is ignored when Salvage is set.
	Salvage bool
	// TaskLabel, when non-nil, names task i in error messages — set it to
	// render the task's input so a failure identifies its sweep point
	// instead of a bare index.
	TaskLabel func(i int) string
	// Trace, when non-nil, receives sweep provenance events: salvaged
	// task failures (trace.KindSalvage, appended serially in task order
	// after the pool drains) and MapCheckpointed's store decisions
	// (trace.KindCheckpoint "hit"/"save", appended as tasks complete —
	// per-task content is deterministic, cross-task order follows
	// completion and is excluded from the byte-identity contract).
	Trace *trace.Recorder
}

// ExpBackoff returns a deterministic doubling backoff schedule: base,
// 2·base, 4·base, … capped at max (no jitter — same inputs, same delays).
func ExpBackoff(base, max time.Duration) func(int) time.Duration {
	return func(retry int) time.Duration {
		d := base
		for i := 0; i < retry && d < max; i++ {
			d *= 2
		}
		if d > max {
			d = max
		}
		return d
	}
}

// label renders task i for error messages.
func (o Options) label(i int) string {
	if o.TaskLabel != nil {
		if l := o.TaskLabel(i); l != "" {
			return fmt.Sprintf("%d (%s)", i, l)
		}
	}
	return fmt.Sprintf("%d", i)
}

// TaskError is one failed task inside a MultiError.
type TaskError struct {
	// Index is the task's position in the input slice.
	Index int
	// Label is the task's rendered label ("" without a TaskLabel hook).
	Label string
	// Attempts is how many times the task ran before giving up.
	Attempts int
	// Err is the final attempt's error.
	Err error
}

// Error implements error.
func (e TaskError) Error() string {
	name := fmt.Sprintf("%d", e.Index)
	if e.Label != "" {
		name = fmt.Sprintf("%d (%s)", e.Index, e.Label)
	}
	return fmt.Sprintf("task %s: %v (after %d attempts)", name, e.Err, e.Attempts)
}

// Unwrap exposes the underlying task error to errors.Is/As.
func (e TaskError) Unwrap() error { return e.Err }

// MultiError aggregates every failed task of a Salvage-mode sweep, in task
// order.
type MultiError struct {
	Errors []TaskError
}

// Error implements error.
func (e *MultiError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sweep: %d of %d tasks failed:", len(e.Errors), e.total())
	for _, te := range e.Errors {
		b.WriteString("\n  ")
		b.WriteString(te.Error())
	}
	return b.String()
}

// total is a display hint only; callers carry the real task count.
func (e *MultiError) total() int {
	if len(e.Errors) == 0 {
		return 0
	}
	return e.Errors[len(e.Errors)-1].Index + 1
}

// Unwrap exposes the per-task errors to errors.Is/As.
func (e *MultiError) Unwrap() []error {
	out := make([]error, len(e.Errors))
	for i, te := range e.Errors {
		out[i] = te
	}
	return out
}

// Run executes every task and returns results in task order. Without
// Salvage, the returned error is the first task error encountered in task
// order (all tasks still have their individual Err recorded), or ctx's
// error if the context was cancelled first. With Salvage, every task runs
// and a *MultiError aggregates the failures.
func Run[R any](ctx context.Context, tasks []Task[R], opts Options) ([]Result[R], error) {
	if ctx == nil {
		return nil, errors.New("sweep: nil context")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	results := make([]Result[R], len(tasks))
	if len(tasks) == 0 {
		return results, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	indexes := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			//lint:deterministic each task writes only results[i]; completion order never reaches the index-stable output
			for i := range indexes {
				if err := ctx.Err(); err != nil {
					results[i] = Result[R]{Index: i, Err: err}
					continue
				}
				results[i] = runWithRetry(ctx, i, tasks[i], opts)
				if results[i].Err != nil && opts.FailFast && !opts.Salvage {
					cancel()
				}
			}
		}()
	}

feed:
	for i := range tasks {
		//lint:deterministic the select only picks which worker gets index i; results are keyed by index, so scheduling never reaches the output
		select {
		case indexes <- i:
		case <-ctx.Done():
			// Mark unfed tasks as cancelled.
			for j := i; j < len(tasks); j++ {
				//lint:deterministic drains or cancels the remaining indexes; either way results[j] is keyed by j
				select {
				case indexes <- j:
				default:
					results[j] = Result[R]{Index: j, Err: ctx.Err()}
				}
			}
			break feed
		}
	}
	close(indexes)
	wg.Wait()

	var failed []TaskError
	for i := range results {
		if results[i].Err != nil {
			te := TaskError{Index: i, Attempts: results[i].Attempts, Err: results[i].Err}
			if opts.TaskLabel != nil {
				te.Label = opts.TaskLabel(i)
			}
			if !opts.Salvage {
				return results, fmt.Errorf("sweep: task %s: %w", opts.label(i), results[i].Err)
			}
			opts.Trace.Append(trace.Event{Tick: i, Kind: trace.KindSalvage, Agent: -1, Victim: -1,
				Vector: te.Label, N: uint64(results[i].Attempts), Detail: results[i].Err.Error()})
			failed = append(failed, te)
		}
	}
	if len(failed) > 0 {
		return results, &MultiError{Errors: failed}
	}
	return results, ctx.Err()
}

// runWithRetry runs one task up to opts.Retries+1 times with the
// deterministic backoff schedule between attempts.
func runWithRetry[R any](ctx context.Context, i int, t Task[R], opts Options) Result[R] {
	res := Result[R]{Index: i}
	for retry := 0; ; retry++ {
		res.Attempts = retry + 1
		attemptCtx := ctx
		var cancelAttempt context.CancelFunc
		if opts.TaskTimeout > 0 {
			attemptCtx, cancelAttempt = context.WithTimeout(ctx, opts.TaskTimeout)
		}
		res.Value, res.Err = runTask(attemptCtx, t)
		if cancelAttempt != nil {
			cancelAttempt()
		}
		if res.Err == nil || retry >= opts.Retries || ctx.Err() != nil {
			return res
		}
		if opts.Backoff != nil {
			//lint:deterministic retry backoff shapes wall-clock pacing only; attempts and results are unchanged by when they run
			if d := opts.Backoff(retry); d > 0 {
				timer := time.NewTimer(d)
				select {
				case <-timer.C:
				case <-ctx.Done():
					timer.Stop()
					return res
				}
			}
		}
	}
}

// runTask isolates panics so one bad task cannot kill the pool.
func runTask[R any](ctx context.Context, t Task[R]) (v R, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sweep: task panicked: %v", r)
		}
	}()
	return t(ctx)
}

// Map builds tasks from a slice of inputs and a worker function, runs them,
// and unwraps the outputs (first error aborts per Options). Set
// Options.TaskLabel to make failures name their input; MapResults
// additionally exposes the full per-task results.
func Map[T, R any](ctx context.Context, inputs []T, fn func(ctx context.Context, in T) (R, error), opts Options) ([]R, error) {
	results, err := MapResults(ctx, inputs, fn, opts)
	out := make([]R, len(results))
	for i, r := range results {
		out[i] = r.Value
	}
	return out, err
}

// MapResults is Map returning the full per-task results — index, value,
// error, and attempt count for every input, in input order — so callers
// can salvage the completed points of a partially failed sweep.
func MapResults[T, R any](ctx context.Context, inputs []T, fn func(ctx context.Context, in T) (R, error), opts Options) ([]Result[R], error) {
	tasks := make([]Task[R], len(inputs))
	for i, in := range inputs {
		in := in
		tasks[i] = func(ctx context.Context) (R, error) { return fn(ctx, in) }
	}
	return Run(ctx, tasks, opts)
}
