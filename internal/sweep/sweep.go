// Package sweep runs batches of independent simulation tasks across a
// bounded worker pool: parameter sweeps (hit-list sizes, NAT fractions,
// alert thresholds, seeds) that would otherwise run serially. Results
// return in task order regardless of completion order, and a context
// cancels stragglers.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// Task is one unit of sweep work; it must be safe to run concurrently with
// other tasks (tasks share nothing unless the caller arranges otherwise).
type Task[R any] func(ctx context.Context) (R, error)

// Result pairs a task's output with its index and error.
type Result[R any] struct {
	// Index is the task's position in the input slice.
	Index int
	// Value is the task's output; valid when Err is nil.
	Value R
	// Err is the task's failure, or nil.
	Err error
}

// Options tunes the pool.
type Options struct {
	// Workers bounds concurrency; ≤0 means GOMAXPROCS.
	Workers int
	// FailFast cancels remaining tasks after the first error.
	FailFast bool
}

// Run executes every task and returns results in task order. The returned
// error is the first task error encountered in task order (all tasks still
// have their individual Err recorded), or ctx's error if the context was
// cancelled first.
func Run[R any](ctx context.Context, tasks []Task[R], opts Options) ([]Result[R], error) {
	if ctx == nil {
		return nil, errors.New("sweep: nil context")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	results := make([]Result[R], len(tasks))
	if len(tasks) == 0 {
		return results, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	indexes := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indexes {
				if err := ctx.Err(); err != nil {
					results[i] = Result[R]{Index: i, Err: err}
					continue
				}
				v, err := runTask(ctx, tasks[i])
				results[i] = Result[R]{Index: i, Value: v, Err: err}
				if err != nil && opts.FailFast {
					cancel()
				}
			}
		}()
	}

feed:
	for i := range tasks {
		select {
		case indexes <- i:
		case <-ctx.Done():
			// Mark unfed tasks as cancelled.
			for j := i; j < len(tasks); j++ {
				select {
				case indexes <- j:
				default:
					results[j] = Result[R]{Index: j, Err: ctx.Err()}
				}
			}
			break feed
		}
	}
	close(indexes)
	wg.Wait()

	for i := range results {
		if results[i].Err != nil {
			return results, fmt.Errorf("sweep: task %d: %w", i, results[i].Err)
		}
	}
	return results, ctx.Err()
}

// runTask isolates panics so one bad task cannot kill the pool.
func runTask[R any](ctx context.Context, t Task[R]) (v R, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sweep: task panicked: %v", r)
		}
	}()
	return t(ctx)
}

// Map builds tasks from a slice of inputs and a worker function, runs them,
// and unwraps the outputs (first error aborts per Options).
func Map[T, R any](ctx context.Context, inputs []T, fn func(ctx context.Context, in T) (R, error), opts Options) ([]R, error) {
	tasks := make([]Task[R], len(inputs))
	for i, in := range inputs {
		in := in
		tasks[i] = func(ctx context.Context) (R, error) { return fn(ctx, in) }
	}
	results, err := Run(ctx, tasks, opts)
	out := make([]R, len(results))
	for i, r := range results {
		out[i] = r.Value
	}
	return out, err
}
