package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"repro/internal/trace"
	"sort"
	"sync"
)

// Checkpoint is a JSON-backed store of completed task results keyed by
// caller-chosen stable strings. An interrupted sweep re-opened against the
// same file replays completed points from the store instead of recomputing
// them; values round-trip through encoding/json, whose float64 encoding is
// exact, so a resumed sweep reproduces an uninterrupted one byte for byte.
//
// The file is a single flat JSON object ({"key": value, ...}), rewritten
// atomically (temp file + rename) on every Save so a kill mid-sweep leaves
// either the previous or the new complete store, never a torn one. Safe
// for concurrent use by one process; not for concurrent writers across
// processes.
type Checkpoint struct {
	mu   sync.Mutex
	path string
	done map[string]json.RawMessage
}

// OpenCheckpoint loads the store at path, creating an empty one if the
// file does not exist yet.
func OpenCheckpoint(path string) (*Checkpoint, error) {
	if path == "" {
		return nil, fmt.Errorf("sweep: empty checkpoint path")
	}
	c := &Checkpoint{path: path, done: make(map[string]json.RawMessage)}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		return nil, fmt.Errorf("sweep: read checkpoint: %w", err)
	}
	if err := json.Unmarshal(data, &c.done); err != nil {
		return nil, fmt.Errorf("sweep: checkpoint %s corrupt: %w", path, err)
	}
	return c, nil
}

// Len returns how many completed results the store holds.
func (c *Checkpoint) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.done)
}

// Keys returns the stored keys, sorted.
func (c *Checkpoint) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, len(c.done))
	for k := range c.done {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Lookup decodes the stored result for key into out, reporting whether the
// key was present.
func (c *Checkpoint) Lookup(key string, out any) (bool, error) {
	c.mu.Lock()
	raw, ok := c.done[key]
	c.mu.Unlock()
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return false, fmt.Errorf("sweep: checkpoint entry %q corrupt: %w", key, err)
	}
	return true, nil
}

// Save stores a completed result under key and persists the whole store
// atomically.
func (c *Checkpoint) Save(key string, val any) error {
	raw, err := json.Marshal(val)
	if err != nil {
		return fmt.Errorf("sweep: checkpoint entry %q: %w", key, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.done[key] = raw
	return c.persistLocked()
}

// persistLocked writes the store via a temp file in the same directory and
// renames it over the target, so readers never see a partial file.
func (c *Checkpoint) persistLocked() error {
	data, err := json.MarshalIndent(c.done, "", " ")
	if err != nil {
		return fmt.Errorf("sweep: marshal checkpoint: %w", err)
	}
	dir := filepath.Dir(c.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(c.path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("sweep: write checkpoint: %w", err)
	}
	_, werr := tmp.Write(append(data, '\n'))
	// Sync before rename: without it a crash shortly after Save can leave
	// the renamed file with zero-length or partial content on some
	// filesystems, which OpenCheckpoint would then reject as corrupt.
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		werr = errors.Join(werr, serr)
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: write checkpoint: %w", errors.Join(werr, cerr))
	}
	if err := os.Rename(tmp.Name(), c.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: write checkpoint: %w", err)
	}
	return nil
}

// MapCheckpointed is Map with checkpoint/resume: each input's result is
// looked up in cp under key(i, input) and, on a hit, returned without
// re-running the worker; misses run normally and are saved on success.
// Keys must be stable across runs (derive them from the input, never from
// timing or iteration order). A nil cp degrades to plain Map.
func MapCheckpointed[T, R any](ctx context.Context, inputs []T, key func(i int, in T) string, fn func(ctx context.Context, in T) (R, error), cp *Checkpoint, opts Options) ([]R, error) {
	if cp == nil {
		return Map(ctx, inputs, fn, opts)
	}
	if key == nil {
		return nil, fmt.Errorf("sweep: MapCheckpointed needs a key function")
	}
	tasks := make([]Task[R], len(inputs))
	for i, in := range inputs {
		i, in := i, in
		tasks[i] = func(ctx context.Context) (R, error) {
			k := key(i, in)
			var cached R
			if hit, err := cp.Lookup(k, &cached); err != nil {
				return cached, err
			} else if hit {
				opts.Trace.Append(trace.Event{Tick: i, Kind: trace.KindCheckpoint, Agent: -1, Victim: -1, Vector: "hit", Detail: k})
				return cached, nil
			}
			v, err := fn(ctx, in)
			if err != nil {
				return v, err
			}
			if err := cp.Save(k, v); err != nil {
				return v, err
			}
			opts.Trace.Append(trace.Event{Tick: i, Kind: trace.KindCheckpoint, Agent: -1, Victim: -1, Vector: "save", Detail: k})
			return v, nil
		}
	}
	results, err := Run(ctx, tasks, opts)
	out := make([]R, len(results))
	for i, r := range results {
		out[i] = r.Value
	}
	return out, err
}
