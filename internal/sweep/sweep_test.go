package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunOrderedResults(t *testing.T) {
	var tasks []Task[int]
	for i := 0; i < 50; i++ {
		i := i
		tasks = append(tasks, func(context.Context) (int, error) { return i * i, nil })
	}
	results, err := Run(context.Background(), tasks, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Index != i || r.Err != nil || r.Value != i*i {
			t.Fatalf("result %d = %+v", i, r)
		}
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	var active, peak int64
	var tasks []Task[struct{}]
	for i := 0; i < 32; i++ {
		tasks = append(tasks, func(context.Context) (struct{}, error) {
			cur := atomic.AddInt64(&active, 1)
			for {
				p := atomic.LoadInt64(&peak)
				if cur <= p || atomic.CompareAndSwapInt64(&peak, p, cur) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			atomic.AddInt64(&active, -1)
			return struct{}{}, nil
		})
	}
	if _, err := Run(context.Background(), tasks, Options{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	if p := atomic.LoadInt64(&peak); p > 4 {
		t.Errorf("peak concurrency %d, want ≤4", p)
	}
}

func TestRunCollectsErrors(t *testing.T) {
	boom := errors.New("boom")
	tasks := []Task[int]{
		func(context.Context) (int, error) { return 1, nil },
		func(context.Context) (int, error) { return 0, boom },
		func(context.Context) (int, error) { return 3, nil },
	}
	results, err := Run(context.Background(), tasks, Options{Workers: 2})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Error("healthy tasks reported errors")
	}
	if !errors.Is(results[1].Err, boom) {
		t.Error("failed task lost its error")
	}
}

func TestRunFailFastCancelsRest(t *testing.T) {
	boom := errors.New("boom")
	var ran int64
	var tasks []Task[int]
	tasks = append(tasks, func(context.Context) (int, error) {
		return 0, boom
	})
	for i := 0; i < 64; i++ {
		tasks = append(tasks, func(ctx context.Context) (int, error) {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			atomic.AddInt64(&ran, 1)
			time.Sleep(time.Millisecond)
			return 1, nil
		})
	}
	_, err := Run(context.Background(), tasks, Options{Workers: 1, FailFast: true})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if n := atomic.LoadInt64(&ran); n > 4 {
		t.Errorf("%d tasks ran after fail-fast, want ≈0", n)
	}
}

func TestRunPanicIsolated(t *testing.T) {
	tasks := []Task[int]{
		func(context.Context) (int, error) { panic("kaboom") },
		func(context.Context) (int, error) { return 7, nil },
	}
	results, err := Run(context.Background(), tasks, Options{Workers: 2})
	if err == nil {
		t.Fatal("panic not surfaced as error")
	}
	if results[1].Err != nil || results[1].Value != 7 {
		t.Error("panic killed a sibling task")
	}
}

func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var tasks []Task[int]
	for i := 0; i < 100; i++ {
		i := i
		tasks = append(tasks, func(ctx context.Context) (int, error) {
			if i == 3 {
				cancel()
			}
			return i, ctx.Err()
		})
	}
	_, err := Run(ctx, tasks, Options{Workers: 1})
	if err == nil {
		t.Fatal("cancellation not reported")
	}
}

func TestRunEmptyAndNil(t *testing.T) {
	results, err := Run[int](context.Background(), nil, Options{})
	if err != nil || len(results) != 0 {
		t.Errorf("empty run: %v, %v", results, err)
	}
	if _, err := Run[int](nil, nil, Options{}); err == nil { //nolint:staticcheck // deliberate nil ctx
		t.Error("nil context accepted")
	}
}

func TestMap(t *testing.T) {
	inputs := []int{1, 2, 3, 4, 5}
	out, err := Map(context.Background(), inputs,
		func(_ context.Context, in int) (string, error) {
			return fmt.Sprintf("v%d", in*10), nil
		}, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"v10", "v20", "v30", "v40", "v50"}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v", out)
		}
	}
}

func TestMapPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	_, err := Map(context.Background(), []int{1, 2},
		func(_ context.Context, in int) (int, error) {
			if in == 2 {
				return 0, boom
			}
			return in, nil
		}, Options{})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}
