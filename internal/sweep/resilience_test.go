package sweep

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	var calls atomic.Int64
	tasks := []Task[int]{func(ctx context.Context) (int, error) {
		if calls.Add(1) < 3 {
			return 0, errors.New("transient")
		}
		return 42, nil
	}}
	results, err := Run(context.Background(), tasks, Options{Retries: 2})
	if err != nil {
		t.Fatalf("sweep failed despite retries: %v", err)
	}
	if results[0].Value != 42 || results[0].Attempts != 3 {
		t.Errorf("result = %+v, want value 42 after 3 attempts", results[0])
	}
}

func TestRetryGivesUpAndReportsAttempts(t *testing.T) {
	permanent := errors.New("permanent")
	tasks := []Task[int]{func(ctx context.Context) (int, error) { return 0, permanent }}
	results, err := Run(context.Background(), tasks, Options{Retries: 2})
	if err == nil || !errors.Is(err, permanent) {
		t.Fatalf("err = %v, want wrapped permanent error", err)
	}
	if results[0].Attempts != 3 {
		t.Errorf("Attempts = %d, want 3", results[0].Attempts)
	}
}

func TestExpBackoffIsDeterministic(t *testing.T) {
	b := ExpBackoff(10*time.Millisecond, 40*time.Millisecond)
	want := []time.Duration{10, 20, 40, 40, 40}
	for i, w := range want {
		if got := b(i); got != w*time.Millisecond {
			t.Errorf("backoff(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
}

func TestTaskTimeoutCancelsAttemptContext(t *testing.T) {
	tasks := []Task[int]{func(ctx context.Context) (int, error) {
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-time.After(5 * time.Second):
			return 0, errors.New("deadline never fired")
		}
	}}
	results, err := Run(context.Background(), tasks, Options{TaskTimeout: 10 * time.Millisecond})
	if err == nil || !errors.Is(results[0].Err, context.DeadlineExceeded) {
		t.Fatalf("task err = %v, want deadline exceeded", results[0].Err)
	}
}

func TestSalvageReturnsPartialResultsAndMultiError(t *testing.T) {
	inputs := []int{0, 1, 2, 3, 4}
	boom := errors.New("boom")
	results, err := MapResults(context.Background(), inputs,
		func(ctx context.Context, in int) (int, error) {
			if in%2 == 1 {
				return 0, fmt.Errorf("input %d: %w", in, boom)
			}
			return in * 10, nil
		},
		Options{Salvage: true, TaskLabel: func(i int) string { return fmt.Sprintf("point=%d", i) }})
	if err == nil {
		t.Fatal("salvage sweep with failures returned nil error")
	}
	var multi *MultiError
	if !errors.As(err, &multi) {
		t.Fatalf("err %T is not a *MultiError", err)
	}
	if len(multi.Errors) != 2 || multi.Errors[0].Index != 1 || multi.Errors[1].Index != 3 {
		t.Fatalf("MultiError = %v, want tasks 1 and 3", multi.Errors)
	}
	if !errors.Is(err, boom) {
		t.Error("MultiError does not unwrap to the task error")
	}
	if !strings.Contains(multi.Errors[0].Error(), "point=1") {
		t.Errorf("task error %q missing its label", multi.Errors[0].Error())
	}
	// Every successful point survives, in order, despite the failures.
	for _, i := range []int{0, 2, 4} {
		if results[i].Err != nil || results[i].Value != i*10 {
			t.Errorf("salvaged result %d = %+v", i, results[i])
		}
	}
}

// TestMapErrorNamesItsInput is the regression test for the error-opacity
// fix: a failed Map used to report only the flat task index, leaving the
// caller to guess which sweep point died.
func TestMapErrorNamesItsInput(t *testing.T) {
	inputs := []string{"hitlist=1000", "hitlist=2000", "hitlist=4000"}
	_, err := Map(context.Background(), inputs,
		func(ctx context.Context, in string) (int, error) {
			if in == "hitlist=2000" {
				return 0, errors.New("diverged")
			}
			return 0, nil
		},
		Options{TaskLabel: func(i int) string { return inputs[i] }})
	if err == nil {
		t.Fatal("Map swallowed the failure")
	}
	if !strings.Contains(err.Error(), "hitlist=2000") {
		t.Errorf("Map error %q does not name the failing input", err)
	}
}

func TestCheckpointPersistAndReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	cp, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	type point struct {
		X float64 `json:"x"`
		N int     `json:"n"`
	}
	want := point{X: 0.1 + 0.2, N: 7} // a float that needs exact round-trip
	if err := cp.Save("a", want); err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	var got point
	hit, err := reopened.Lookup("a", &got)
	if err != nil || !hit {
		t.Fatalf("Lookup after reload: hit=%v err=%v", hit, err)
	}
	if got != want {
		t.Errorf("round trip changed the value: %+v vs %+v", got, want)
	}
	if hit, _ := reopened.Lookup("missing", &got); hit {
		t.Error("Lookup invented a missing key")
	}
	if reopened.Len() != 1 || len(reopened.Keys()) != 1 {
		t.Errorf("Len/Keys wrong: %d / %v", reopened.Len(), reopened.Keys())
	}
}

func TestCheckpointRejectsCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCheckpoint(path); err == nil {
		t.Error("corrupt checkpoint accepted")
	}
	if _, err := OpenCheckpoint(""); err == nil {
		t.Error("empty checkpoint path accepted")
	}
}

// TestResumedSweepIsByteIdenticalAndSkipsCachedTasks is the
// checkpoint/resume contract: a sweep interrupted partway and resumed
// against the same checkpoint file reproduces the uninterrupted sweep's
// output byte for byte, without re-executing the tasks that completed
// before the interruption.
func TestResumedSweepIsByteIdenticalAndSkipsCachedTasks(t *testing.T) {
	inputs := []int{1, 2, 3, 4, 5, 6}
	key := func(i int, in int) string { return fmt.Sprintf("seed=%d", in) }
	// The worker's output exercises float exactness through JSON.
	work := func(ctx context.Context, in int) (float64, error) {
		return float64(in) / 7.0, nil
	}
	serialize := func(vals []float64) string {
		var b strings.Builder
		for _, v := range vals {
			fmt.Fprintf(&b, "%x\n", v)
		}
		return b.String()
	}

	// Ground truth: one uninterrupted, checkpoint-free sweep.
	clean, err := Map(context.Background(), inputs, work, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: the worker fails past the third task, salvaging the
	// first points into the checkpoint.
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	cp, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	var firstCalls atomic.Int64
	_, err = MapCheckpointed(context.Background(), inputs, key,
		func(ctx context.Context, in int) (float64, error) {
			firstCalls.Add(1)
			if in > 3 {
				return 0, errors.New("interrupted")
			}
			return work(ctx, in)
		}, cp, Options{Workers: 1, Salvage: true})
	if err == nil {
		t.Fatal("interrupted sweep reported success")
	}
	if cp.Len() != 3 {
		t.Fatalf("checkpoint holds %d entries after interruption, want 3", cp.Len())
	}

	// Resume from the file a fresh process would open.
	resumedCP, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	var resumedCalls atomic.Int64
	resumed, err := MapCheckpointed(context.Background(), inputs, key,
		func(ctx context.Context, in int) (float64, error) {
			resumedCalls.Add(1)
			return work(ctx, in)
		}, resumedCP, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := resumedCalls.Load(); got != 3 {
		t.Errorf("resume re-executed %d tasks, want 3 (cached tasks must not rerun)", got)
	}
	if serialize(resumed) != serialize(clean) {
		t.Errorf("resumed sweep diverged from uninterrupted run:\nresumed:\n%sclean:\n%s",
			serialize(resumed), serialize(clean))
	}
}
