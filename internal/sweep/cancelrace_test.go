package sweep

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
)

// TestMapCheckpointedCancelRace races context cancellation against
// checkpoint writes: a parallel sweep is cancelled mid-flight, over many
// rounds, and after every interruption the store on disk must still be a
// single complete JSON object (never torn, never a leftover temp file),
// and a resumed sweep must produce exactly what an uninterrupted one does.
func TestMapCheckpointedCancelRace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "race.ckpt")
	inputs := make([]int, 64)
	for i := range inputs {
		inputs[i] = i
	}
	key := func(_ int, in int) string { return fmt.Sprintf("k%03d", in) }
	fn := func(ctx context.Context, in int) (string, error) {
		return fmt.Sprintf("v%03d", in*in), nil
	}

	// Reference: one uninterrupted run.
	refCP, err := OpenCheckpoint(filepath.Join(dir, "ref.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	want, err := MapCheckpointed(context.Background(), inputs, key, fn, refCP, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 20; round++ {
		cp, err := OpenCheckpoint(path)
		if err != nil {
			t.Fatalf("round %d: reopen after interruption: %v", round, err)
		}
		// Cancel partway through: after a round-dependent number of task
		// completions, so every round interrupts at a different point and
		// some cancellations land inside persistLocked's write+rename.
		ctx, cancel := context.WithCancel(context.Background())
		var done atomic.Int64
		cutoff := int64(1 + round*3%len(inputs))
		gated := func(ctx context.Context, in int) (string, error) {
			v, err := fn(ctx, in)
			if done.Add(1) == cutoff {
				cancel()
			}
			return v, err
		}
		_, err = MapCheckpointed(ctx, inputs, key, gated, cp, Options{Workers: 8})
		cancel()
		if err == nil && cp.Len() < len(inputs) {
			t.Fatalf("round %d: no error but only %d/%d results", round, cp.Len(), len(inputs))
		}

		// The file on disk must be a complete, parseable store.
		if data, rerr := os.ReadFile(path); rerr == nil {
			var m map[string]json.RawMessage
			if jerr := json.Unmarshal(data, &m); jerr != nil {
				t.Fatalf("round %d: torn checkpoint on disk: %v\n%q", round, jerr, data)
			}
		} else if !os.IsNotExist(rerr) {
			t.Fatal(rerr)
		}
		// Atomic-rename discipline: no orphaned temp files.
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if strings.Contains(e.Name(), ".tmp-") {
				t.Fatalf("round %d: leftover temp file %s", round, e.Name())
			}
		}
	}

	// Resume after all those interruptions: the final run must fill in the
	// gaps and agree with the uninterrupted reference exactly.
	cp, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MapCheckpointed(context.Background(), inputs, key, fn, cp, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("resumed result %d = %q, want %q", i, got[i], want[i])
		}
	}
	if cp.Len() != len(inputs) {
		t.Fatalf("final store has %d/%d entries", cp.Len(), len(inputs))
	}
}
