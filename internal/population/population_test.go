package population

import (
	"math"
	"strings"
	"testing"

	"repro/internal/ipv4"
	"repro/internal/worm"
)

func TestSynthesizeValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
	}{
		{name: "zero-size", cfg: Config{Size: 0, Slash8s: 4, Slash16s: 8}},
		{name: "no-slash8s", cfg: Config{Size: 10, Slash8s: 0, Slash16s: 4}},
		{name: "slash16s-below-slash8s", cfg: Config{Size: 10, Slash8s: 4, Slash16s: 2}},
		{name: "slash16s-overflow", cfg: Config{Size: 100000, Slash8s: 1, Slash16s: 300}},
		{name: "more-16s-than-hosts", cfg: Config{Size: 5, Slash8s: 2, Slash16s: 6}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Synthesize(tt.cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestSynthesizeMatchesPaperStatistics(t *testing.T) {
	p, err := Synthesize(DefaultCodeRedII(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Size(); got != 134586 {
		t.Fatalf("size = %d, want 134586", got)
	}
	if got := len(p.Slash8Histogram()); got != 47 {
		t.Errorf("populated /8s = %d, want 47", got)
	}
	if got := len(p.Slash16Histogram()); got != 4481 {
		t.Errorf("populated /16s = %d, want 4481", got)
	}
	// Top 20 /8s hold ≈94% of hosts.
	if got := p.TopSlash8Share(20); got < 0.90 || got > 0.99 {
		t.Errorf("top-20 /8 share = %.3f, want ≈0.94", got)
	}
	// 192/8 is populated (required by the CRII experiments).
	found := false
	for _, sc := range p.Slash8Histogram() {
		if sc.Network == 192 {
			found = true
		}
	}
	if !found {
		t.Error("192/8 not populated")
	}
	// All addresses distinct and unreserved.
	seen := make(map[ipv4.Addr]bool, p.Size())
	for _, h := range p.Hosts() {
		if seen[h.Addr] {
			t.Fatalf("duplicate address %v", h.Addr)
		}
		seen[h.Addr] = true
		if h.Addr.IsReserved() || h.Addr.IsLoopback() {
			t.Fatalf("reserved address %v in population", h.Addr)
		}
		if h.IsNATed() {
			t.Fatalf("NAT site assigned before AssignNAT")
		}
	}
}

func TestSynthesizeHitListCoverageAnchors(t *testing.T) {
	// The greedy /16 hit-list coverage must land near the paper's
	// 10→10.60%, 100→50.49%, 1000→91.33% anchors.
	p, err := Synthesize(DefaultCodeRedII(1))
	if err != nil {
		t.Fatal(err)
	}
	addrs := p.Addrs(false)
	tests := []struct {
		k    int
		want float64
	}{
		{k: 10, want: 0.1060},
		{k: 100, want: 0.5049},
		{k: 1000, want: 0.9133},
		{k: 4481, want: 1.0},
	}
	for _, tt := range tests {
		_, cover := worm.BuildGreedySlash16HitList(addrs, tt.k)
		if math.Abs(cover-tt.want) > 0.02 {
			t.Errorf("top-%d coverage = %.4f, want %.4f±0.02", tt.k, cover, tt.want)
		}
	}
}

func TestSynthesizeDeterminism(t *testing.T) {
	cfg := DefaultCodeRedII(7)
	cfg.Size = 2000
	cfg.Slash16s = 500
	a, err := Synthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ah, bh := a.Hosts(), b.Hosts()
	for i := range ah {
		if ah[i] != bh[i] {
			t.Fatal("same seed produced different populations")
		}
	}
	cfg.Seed = 8
	c, err := Synthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i, h := range c.Hosts() {
		if h == ah[i] {
			same++
		}
	}
	if same == len(ah) {
		t.Error("different seeds produced identical populations")
	}
}

func TestAssignNAT(t *testing.T) {
	cfg := DefaultCodeRedII(3)
	cfg.Size = 10000
	cfg.Slash16s = 400
	p, err := Synthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AssignNAT(0.15, 4, 99); err != nil {
		t.Fatal(err)
	}
	private := ipv4.MustParsePrefix("192.168.0.0/16")
	var natted int
	siteSizes := make(map[int]int)
	for _, h := range p.Hosts() {
		if !h.IsNATed() {
			if private.Contains(h.Addr) {
				t.Fatalf("public host with private address %v", h.Addr)
			}
			continue
		}
		natted++
		if !private.Contains(h.Addr) {
			t.Fatalf("NAT'd host with public address %v", h.Addr)
		}
		siteSizes[h.Site]++
	}
	if want := 1500; natted != want {
		t.Errorf("NAT'd hosts = %d, want %d", natted, want)
	}
	for site, size := range siteSizes {
		if size > 4 {
			t.Errorf("site %d has %d hosts, want ≤4", site, size)
		}
	}
	if p.Sites() != len(siteSizes) {
		t.Errorf("Sites() = %d, want %d", p.Sites(), len(siteSizes))
	}

	// Lookup resolves private addresses to all hosts sharing them.
	h0 := p.Hosts()[0]
	ids := p.Lookup(h0.Addr)
	found := false
	for _, id := range ids {
		if p.Host(id) == h0 {
			found = true
		}
	}
	if !found {
		t.Error("Lookup lost a host")
	}
}

func TestAssignNATValidation(t *testing.T) {
	p, err := Synthesize(Config{Size: 100, Slash8s: 2, Slash16s: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AssignNAT(-0.1, 4, 1); err == nil {
		t.Error("negative fraction accepted")
	}
	if err := p.AssignNAT(1.5, 4, 1); err == nil {
		t.Error("fraction > 1 accepted")
	}
	if err := p.AssignNAT(0, 4, 1); err != nil {
		t.Errorf("zero fraction rejected: %v", err)
	}
}

func TestAssignNATSingleSite(t *testing.T) {
	p, err := Synthesize(Config{Size: 1000, Slash8s: 3, Slash16s: 30, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AssignNAT(0.3, 0, 2); err != nil {
		t.Fatal(err)
	}
	sites := make(map[int]int)
	for _, h := range p.Hosts() {
		if h.IsNATed() {
			sites[h.Site]++
		}
	}
	if len(sites) != 1 {
		t.Fatalf("single-site mode produced %d sites", len(sites))
	}
	if sites[0] != 300 {
		t.Errorf("site holds %d hosts, want 300", sites[0])
	}
}

func TestAddrsPublicOnly(t *testing.T) {
	p, err := Synthesize(Config{Size: 1000, Slash8s: 3, Slash16s: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AssignNAT(0.2, 8, 2); err != nil {
		t.Fatal(err)
	}
	pub := p.Addrs(true)
	all := p.Addrs(false)
	if len(all) != 1000 {
		t.Errorf("Addrs(false) = %d, want 1000", len(all))
	}
	if len(pub) != 800 {
		t.Errorf("Addrs(true) = %d, want 800", len(pub))
	}
	for _, a := range pub {
		if a.IsPrivate() {
			t.Fatalf("public list contains private %v", a)
		}
	}
}

func TestTopSlash8s(t *testing.T) {
	p, err := Synthesize(Config{Size: 5000, Slash8s: 5, Slash16s: 50, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	top := p.TopSlash8s(3)
	if len(top) != 3 {
		t.Fatalf("TopSlash8s(3) returned %d", len(top))
	}
	hist := p.Slash8Histogram()
	for i, net := range top {
		if hist[i].Network != net {
			t.Errorf("TopSlash8s[%d] = %d, want %d", i, net, hist[i].Network)
		}
	}
	// Asking for more than exist clamps.
	if got := p.TopSlash8s(100); len(got) != 5 {
		t.Errorf("TopSlash8s(100) = %d entries, want 5", len(got))
	}
}

// TestSynthesizeAllocsProportionalToSlash16s pins the regression the
// internet-scale work fixed: host-address dedup used to go through a
// population-sized map, so transient allocation grew with the host count.
// The per-/16 bitset makes it grow with the /16 count instead —
// quadrupling the population at a fixed /16 count must not meaningfully
// change the allocation count.
func TestSynthesizeAllocsProportionalToSlash16s(t *testing.T) {
	measure := func(size int) float64 {
		cfg := Config{Size: size, Slash8s: 10, Slash16s: 400, Seed: 6}
		return testing.AllocsPerRun(5, func() {
			if _, err := Synthesize(cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
	small, big := measure(20000), measure(80000)
	if big > small+32 {
		t.Errorf("allocations grew with population size: %.0f at 20k hosts vs %.0f at 80k", small, big)
	}
}

func TestSynthesizeSlash16Capacity(t *testing.T) {
	// A /16 holds 65,536 addresses; a config that forces more hosts than
	// that into the densest /16 must be rejected up front, not spin forever
	// rejecting duplicate draws.
	_, err := Synthesize(Config{Size: 70000, Slash8s: 1, Slash16s: 1, Seed: 1})
	if err == nil {
		t.Fatal("over-capacity /16 accepted")
	}
	if !strings.Contains(err.Error(), "exceed") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestSynthesizeAvoidsPrivateSlash16s(t *testing.T) {
	// Non-NAT hosts must all be routable: the exact driver drops probes to
	// RFC 1918 destinations, so a "public" host at 172.30.x.y or 192.168.x.y
	// is structurally unreachable there while the fast driver's rate models
	// still count it (xcheck seed 1783 caught exactly this divergence).
	// Sweeping every /16 of every /8 across several seeds forces the
	// assignment walk through the private blocks.
	for seed := uint64(1); seed <= 5; seed++ {
		p, err := Synthesize(Config{
			Size:             3 * 256,
			Slash8s:          3,
			Slash16s:         3 * 240,
			Include192Slash8: true,
			Seed:             seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range p.Addrs(false) {
			if a.IsPrivate() {
				t.Fatalf("seed %d: synthesized host %v is in private space", seed, a)
			}
		}
	}
	// The capacity check must account for the excluded private /16s instead
	// of letting the assignment walk panic: 256 /16s never fit in 172/8 or
	// 192/8 alone, whatever the other /8s absorb.
	if _, err := Synthesize(Config{Size: 3 * 256, Slash8s: 3, Slash16s: 3 * 256, Include192Slash8: true, Seed: 1}); err == nil {
		t.Error("config exceeding public /16 capacity accepted")
	}
}

func TestInternetScale(t *testing.T) {
	cfg := InternetScale(300000, 11)
	p, err := Synthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Size(); got != 300000 {
		t.Fatalf("size = %d, want 300000", got)
	}
	if got := len(p.Slash16Histogram()); got != cfg.Slash16s {
		t.Errorf("populated /16s = %d, want %d", got, cfg.Slash16s)
	}
	// Densest /16 must respect address capacity with lots of headroom.
	h16 := p.Slash16Histogram()
	if h16[0].Count > 1<<16 {
		t.Errorf("densest /16 holds %d hosts", h16[0].Count)
	}
	// Head-heavy shape: the top tenth of /16s holds about half the hosts.
	head := 0
	for _, sc := range h16[:cfg.Slash16s/10] {
		head += sc.Count
	}
	if share := float64(head) / 300000; share < 0.4 || share > 0.6 {
		t.Errorf("top-decile /16 share = %.3f, want ≈0.5", share)
	}
	// 192/8 present for the CRII NAT experiments.
	found := false
	for _, sc := range p.Slash8Histogram() {
		if sc.Network == 192 {
			found = true
		}
	}
	if !found {
		t.Error("192/8 not populated")
	}
	// Deterministic.
	q, err := Synthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ph, qh := p.Hosts(), q.Hosts()
	for i := range ph {
		if ph[i] != qh[i] {
			t.Fatal("same InternetScale config produced different populations")
		}
	}
}
