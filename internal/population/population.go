// Package population synthesizes vulnerable-host populations with the
// clustering structure the hotspots paper measured and fed into its
// Section 5 simulations.
//
// The paper's CodeRedII vulnerable population: 134,586 unique addresses
// clustered in 47 /8 networks, occupying 4,481 distinct /16s, with the
// top 20 /8s holding 94% of hosts, and greedy /16 hit-lists of size
// 10/100/1000/4481 covering 10.60%/50.49%/91.33%/100% of the population.
// Synthesize reproduces exactly this shape (up to rounding) for any
// requested size, deterministically from a seed.
//
// A fraction of hosts can be placed behind NATs in 192.168.0.0/16 private
// space (Section 5.3): NAT'd hosts keep a private own-address (which is what
// CodeRedII's local preference keys on) and are grouped into sites;
// reachability semantics live in package netenv.
package population

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/ipv4"
	"repro/internal/rng"
)

// NoSite marks a host that is publicly addressed rather than NAT'd.
const NoSite = -1

// Host is one vulnerable host.
type Host struct {
	// Addr is the address the host itself sees: its public address, or its
	// RFC 1918 private address when behind a NAT. Worm local preference
	// operates on this value.
	Addr ipv4.Addr
	// Site groups NAT'd hosts sharing one private network; NoSite for
	// public hosts.
	Site int
}

// IsNATed reports whether the host sits behind a NAT.
func (h Host) IsNATed() bool { return h.Site != NoSite }

// Config controls synthesis.
type Config struct {
	// Size is the number of vulnerable hosts.
	Size int
	// Slash8s is the number of distinct /8 networks hosting the population.
	Slash8s int
	// Slash16s is the number of distinct /16 networks occupied.
	Slash16s int
	// Anchors pins the cumulative population share covered by the k
	// most-populated /16s; between anchors the /16 size profile is
	// interpolated log-log. Must be sorted by K.
	Anchors []CoverageAnchor
	// Include192Slash8 forces 192.0.0.0/8 to be one of the populated /8s,
	// which the CodeRedII experiments require (public vulnerable hosts in
	// 192/8 are what the NAT leak infects).
	Include192Slash8 bool
	// Seed drives all randomness.
	Seed uint64
}

// CoverageAnchor says "the top K /16s hold Share of all hosts".
type CoverageAnchor struct {
	K     int
	Share float64
}

// DefaultCodeRedII returns the configuration reproducing the paper's
// CodeRedII population statistics.
func DefaultCodeRedII(seed uint64) Config {
	return Config{
		Size:     134586,
		Slash8s:  47,
		Slash16s: 4481,
		Anchors: []CoverageAnchor{
			{K: 10, Share: 0.1060},
			{K: 100, Share: 0.5049},
			{K: 1000, Share: 0.9133},
			{K: 4481, Share: 1.0},
		},
		Include192Slash8: true,
		Seed:             seed,
	}
}

// Population is a synthesized vulnerable population.
type Population struct {
	hosts []Host
	idx   *addrIndex // swapped wholesale whenever hosts mutate
	sites int
}

// addrIndex is the lazily built own-address → host-id map. At internet
// scale the map costs gigabytes and most workloads (the fast driver in
// particular) never call Lookup, so it is built on first use — under a
// sync.Once, because the exact driver's phase-1 workers Lookup
// concurrently. Mutation replaces the whole index rather than resetting
// the Once.
type addrIndex struct {
	once sync.Once
	m    map[ipv4.Addr][]int // private addrs collide across sites
}

// Synthesize builds a population per cfg.
func Synthesize(cfg Config) (*Population, error) {
	if cfg.Size <= 0 {
		return nil, errors.New("population: non-positive size")
	}
	if cfg.Slash8s <= 0 || cfg.Slash8s > 200 {
		return nil, fmt.Errorf("population: %d /8s out of range", cfg.Slash8s)
	}
	if cfg.Slash16s < cfg.Slash8s || cfg.Slash16s > cfg.Slash8s*256 {
		return nil, fmt.Errorf("population: %d /16s impossible within %d /8s", cfg.Slash16s, cfg.Slash8s)
	}
	if cfg.Slash16s > cfg.Size {
		return nil, fmt.Errorf("population: %d /16s exceed %d hosts", cfg.Slash16s, cfg.Size)
	}
	r := rng.NewXoshiro(cfg.Seed)

	sizes := slash16Sizes(cfg)
	if sizes[0] > 1<<16 {
		return nil, fmt.Errorf("population: densest /16 needs %d hosts, exceeding its %d addresses", sizes[0], 1<<16)
	}
	slash8s := chooseSlash8s(cfg, r)
	capacity := 0
	for _, o := range slash8s {
		capacity += publicSlash16s(o)
	}
	if cfg.Slash16s > capacity {
		return nil, fmt.Errorf("population: %d /16s exceed the %d public /16s of the chosen /8s", cfg.Slash16s, capacity)
	}
	slash16s := assignSlash16s(sizes, slash8s, r)

	hosts := make([]Host, 0, cfg.Size)
	// Per-/16 dedup: each /16 is visited once and only the low 16 address
	// bits are drawn, so collisions can never cross /16s — a 64-kbit
	// bitset reset per network replaces the old population-sized map. Same
	// draws, same rejections, same hosts, but transient allocation now
	// scales with the /16 count instead of the host count.
	var seen [1024]uint64
	for i, net16 := range slash16s {
		base := ipv4.Addr(net16) << 16
		for w := range seen {
			seen[w] = 0
		}
		for n := 0; n < sizes[i]; {
			low := r.Uint64n(1 << 16)
			if seen[low>>6]&(1<<(low&63)) != 0 {
				continue
			}
			seen[low>>6] |= 1 << (low & 63)
			hosts = append(hosts, Host{Addr: base | ipv4.Addr(low), Site: NoSite})
			n++
		}
	}
	p := &Population{hosts: hosts}
	p.recount()
	return p, nil
}

// InternetScale returns a configuration for populations far beyond the
// paper's 134,586-host measurement — 10⁷ to 10⁸ hosts — keeping its
// qualitative shape (a dense head of /16s holding half the population, a
// long sparse tail) while respecting each /16's 65,536-address capacity;
// the paper's own anchor curve packs ~30 hosts per /16 and cannot stretch
// two more orders of magnitude. The mean occupancy here stays near the
// paper's ~2,170× /16 undersampling of the head.
func InternetScale(size int, seed uint64) Config {
	s16 := size / 2170
	if s16 < 200 {
		s16 = 200
	}
	if s16 > 200*256 {
		s16 = 200 * 256
	}
	if s16 > size {
		s16 = size
	}
	return Config{
		Size:     size,
		Slash8s:  200,
		Slash16s: s16,
		Anchors: []CoverageAnchor{
			{K: s16 / 10, Share: 0.5},
			{K: s16, Share: 1.0},
		},
		Include192Slash8: true,
		Seed:             seed,
	}
}

// slash16Sizes produces the per-/16 host counts (descending), interpolating
// the anchor coverage curve and exactly summing to cfg.Size.
func slash16Sizes(cfg Config) []int {
	n := cfg.Slash16s
	anchors := cfg.Anchors
	if len(anchors) == 0 {
		anchors = []CoverageAnchor{{K: n, Share: 1.0}}
	}
	// Build the target cumulative share at every rank by piecewise-linear
	// interpolation between anchors (constant per-/16 density within each
	// segment). This keeps the size profile monotone non-increasing —
	// required for the anchors to equal the greedy top-k coverage — and
	// hits each anchor exactly.
	cum := func(k int) float64 {
		if k <= 0 {
			return 0
		}
		if k >= anchors[len(anchors)-1].K {
			return anchors[len(anchors)-1].Share
		}
		prevK, prevS := 0, 0.0
		for _, a := range anchors {
			if k <= a.K {
				t := float64(k-prevK) / float64(a.K-prevK)
				return prevS + t*(a.Share-prevS)
			}
			prevK, prevS = a.K, a.Share
		}
		return 1
	}
	// Largest-remainder rounding against the cumulative host curve, then a
	// 1-host floor (every counted /16 contains at least one vulnerable host
	// by definition) repaid by the densest /16s.
	sizes := make([]int, n)
	type frac struct {
		idx int
		rem float64
	}
	fracs := make([]frac, n)
	total := 0
	for i := range sizes {
		exact := (cum(i+1) - cum(i)) * float64(cfg.Size)
		sizes[i] = int(exact)
		total += sizes[i]
		fracs[i] = frac{idx: i, rem: exact - math.Floor(exact)}
	}
	sort.Slice(fracs, func(i, j int) bool { return fracs[i].rem > fracs[j].rem })
	for i := 0; i < cfg.Size-total; i++ {
		sizes[fracs[i%n].idx]++
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	for i := n - 1; i >= 0 && sizes[i] == 0; i-- {
		sizes[i] = 1
		sizes[0]-- // the head is always large enough to absorb the floor
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	return sizes
}

// chooseSlash8s picks the populated /8 networks: public, unreserved,
// deterministic given the RNG, optionally forcing 192/8 in.
func chooseSlash8s(cfg Config, r *rng.Xoshiro) []uint32 {
	var candidates []uint32
	for o := uint32(1); o <= 223; o++ {
		a := ipv4.Addr(o << 24)
		if a.IsReserved() || a.IsLoopback() || o == 10 {
			continue
		}
		candidates = append(candidates, o)
	}
	picked := make(map[uint32]bool, cfg.Slash8s)
	if cfg.Include192Slash8 {
		picked[192] = true
	}
	for len(picked) < cfg.Slash8s {
		picked[candidates[r.Intn(len(candidates))]] = true
	}
	out := make([]uint32, 0, cfg.Slash8s)
	for o := range picked {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// publicSlash16s counts the /16s of /8 o outside RFC 1918 private space
// (chooseSlash8s already excludes 10/8 wholesale).
func publicSlash16s(o uint32) int {
	switch o {
	case 172:
		return 256 - 16 // 172.16.0.0/12
	case 192:
		return 255 // 192.168.0.0/16
	}
	return 256
}

// assignSlash16s maps each ranked /16 slot to a concrete /16 network. The
// densest /16s are dealt round-robin across a "core" subset of the /8s so
// that a top-20 subset of /8s carries the bulk of the population, as in the
// paper's measurement.
func assignSlash16s(sizes []int, slash8s []uint32, r *rng.Xoshiro) []uint32 {
	core := len(slash8s)
	if core > 20 {
		core = 20
	}
	used := make(map[uint32]bool, len(sizes))
	out := make([]uint32, 0, len(sizes))
	// The second octet walk is randomized per /8 for realism.
	perms := make(map[uint32][]int, len(slash8s))
	next := make(map[uint32]int, len(slash8s))
	for _, o := range slash8s {
		perms[o] = r.Shuffle(256)
	}
	take := func(o uint32) (uint32, bool) {
		for next[o] < 256 {
			second := perms[o][next[o]]
			next[o]++
			net := o<<8 | uint32(second)
			// RFC 1918 /16s (172.16–31, 192.168) are not routable host
			// space: the exact driver drops probes to private destinations,
			// and 192.168/16 is the NAT sites' own address pool.
			if !used[net] && !ipv4.Addr(net<<16).IsPrivate() {
				used[net] = true
				return net, true
			}
		}
		return 0, false
	}
	for i := range sizes {
		var pool []uint32
		if i < len(sizes)*core/len(slash8s) || len(slash8s) == core {
			pool = slash8s[:core]
		} else {
			pool = slash8s[core:]
		}
		// Round-robin with fallback to any /8 that still has room.
		assigned := false
		for try := 0; try < len(pool); try++ {
			o := pool[(i+try)%len(pool)]
			if net, ok := take(o); ok {
				out = append(out, net)
				assigned = true
				break
			}
		}
		if !assigned {
			for _, o := range slash8s {
				if net, ok := take(o); ok {
					out = append(out, net)
					assigned = true
					break
				}
			}
		}
		if !assigned {
			panic("population: ran out of /16 slots (validated in Synthesize)")
		}
	}
	return out
}

// recount refreshes the eager aggregates (site count) and discards the
// lazy address index after any host mutation.
func (p *Population) recount() {
	maxSite := NoSite
	for _, h := range p.hosts {
		if h.Site > maxSite {
			maxSite = h.Site
		}
	}
	p.sites = maxSite + 1
	p.idx = &addrIndex{}
}

// Size returns the number of hosts.
func (p *Population) Size() int { return len(p.hosts) }

// Host returns host i.
func (p *Population) Host(i int) Host { return p.hosts[i] }

// Hosts returns a copy of all hosts.
func (p *Population) Hosts() []Host {
	out := make([]Host, len(p.hosts))
	copy(out, p.hosts)
	return out
}

// Addrs returns every host's own-address (public hosts only when
// publicOnly is set), in host order.
func (p *Population) Addrs(publicOnly bool) []ipv4.Addr {
	out := make([]ipv4.Addr, 0, len(p.hosts))
	for _, h := range p.hosts {
		if publicOnly && h.IsNATed() {
			continue
		}
		out = append(out, h.Addr)
	}
	return out
}

// Lookup returns the ids of hosts whose own-address equals addr. Multiple
// ids occur only for private addresses reused across NAT sites. The
// backing index is built on first call (safe under concurrent Lookups).
func (p *Population) Lookup(addr ipv4.Addr) []int {
	idx := p.idx
	idx.once.Do(func() {
		m := make(map[ipv4.Addr][]int, len(p.hosts))
		for i, h := range p.hosts {
			m[h.Addr] = append(m[h.Addr], i)
		}
		idx.m = m
	})
	return idx.m[addr]
}

// Sites returns the number of NAT sites.
func (p *Population) Sites() int { return p.sites }

// AssignNAT rehomes a fraction of hosts behind NATs: each chosen host gets a
// fresh private address in 192.168.0.0/16 and a site id. Hosts are grouped
// into sites of hostsPerSite (the tail site may be smaller); hostsPerSite
// ≤ 0 puts every NAT'd host in one shared site — the paper's Section 5.3
// model, where 192.168/16 behaves as one private network that the worm can
// traverse internally. The selection is uniform over hosts and
// deterministic in seed.
func (p *Population) AssignNAT(fraction float64, hostsPerSite int, seed uint64) error {
	if fraction < 0 || fraction > 1 {
		return fmt.Errorf("population: NAT fraction %v out of [0,1]", fraction)
	}
	r := rng.NewXoshiro(seed)
	n := int(math.Round(fraction * float64(len(p.hosts))))
	if n == 0 {
		return nil
	}
	if hostsPerSite <= 0 {
		hostsPerSite = n
	}
	if hostsPerSite > 1<<16 {
		return errors.New("population: a NAT site cannot exceed the 192.168/16 address space")
	}
	chosen := r.SampleWithoutReplacement(len(p.hosts), n)
	sort.Ints(chosen)
	private := ipv4.MustParsePrefix("192.168.0.0/16")
	site := 0
	inSite := 0
	usedInSite := make(map[ipv4.Addr]bool, hostsPerSite)
	for _, id := range chosen {
		if inSite == hostsPerSite {
			site++
			inSite = 0
			usedInSite = make(map[ipv4.Addr]bool, hostsPerSite)
		}
		var a ipv4.Addr
		for {
			a = private.Nth(r.Uint64n(private.NumAddrs()))
			if !usedInSite[a] {
				usedInSite[a] = true
				break
			}
		}
		p.hosts[id] = Host{Addr: a, Site: site}
		inSite++
	}
	p.recount()
	return nil
}

// Slash8Histogram returns host counts per populated /8, descending.
func (p *Population) Slash8Histogram() []SlashCount {
	return p.histogram(func(a ipv4.Addr) uint32 { return a.Slash8() })
}

// Slash16Histogram returns host counts per populated /16, descending.
// NAT'd hosts count under 192.168/16.
func (p *Population) Slash16Histogram() []SlashCount {
	return p.histogram(func(a ipv4.Addr) uint32 { return a.Slash16() })
}

// SlashCount pairs a network index with its host count.
type SlashCount struct {
	Network uint32
	Count   int
}

func (p *Population) histogram(key func(ipv4.Addr) uint32) []SlashCount {
	counts := make(map[uint32]int)
	for _, h := range p.hosts {
		counts[key(h.Addr)]++
	}
	out := make([]SlashCount, 0, len(counts))
	for net, c := range counts {
		out = append(out, SlashCount{Network: net, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Network < out[j].Network
	})
	return out
}

// TopSlash8Share returns the fraction of hosts inside the k most-populated
// /8s.
func (p *Population) TopSlash8Share(k int) float64 {
	hist := p.Slash8Histogram()
	if k > len(hist) {
		k = len(hist)
	}
	var top int
	for _, sc := range hist[:k] {
		top += sc.Count
	}
	return float64(top) / float64(len(p.hosts))
}

// TopSlash8s returns the k most-populated /8 networks.
func (p *Population) TopSlash8s(k int) []uint32 {
	hist := p.Slash8Histogram()
	if k > len(hist) {
		k = len(hist)
	}
	out := make([]uint32, k)
	for i := 0; i < k; i++ {
		out[i] = hist[i].Network
	}
	return out
}
