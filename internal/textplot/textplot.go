// Package textplot renders simple ASCII line and bar charts for the
// command-line tools: good enough to see the shape of an epidemic curve or
// a per-/24 hotspot spike in a terminal or a log file.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one plotted line.
type Series struct {
	Name string
	X, Y []float64
}

// symbols assigns one glyph per series, cycling if needed.
var symbols = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&', '=', '~'}

// Options controls rendering.
type Options struct {
	Width  int  // plot area columns (default 72)
	Height int  // plot area rows (default 20)
	LogY   bool // log10 y-axis (zero/negative values clamp to the axis floor)
}

func (o Options) normalized() Options {
	if o.Width <= 0 {
		o.Width = 72
	}
	if o.Height <= 0 {
		o.Height = 20
	}
	return o
}

// Render draws the series onto a shared set of axes, with a legend.
func Render(title string, series []Series, opts Options) string {
	opts = opts.normalized()
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	xMin, xMax, yMin, yMax, any := bounds(series, opts.LogY)
	if !any {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax == yMin {
		yMax = yMin + 1
	}
	grid := make([][]byte, opts.Height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", opts.Width))
	}
	for si, s := range series {
		sym := symbols[si%len(symbols)]
		for i := range s.X {
			y := transformY(s.Y[i], opts.LogY, yMin)
			col := int(float64(opts.Width-1) * (s.X[i] - xMin) / (xMax - xMin))
			row := int(float64(opts.Height-1) * (y - yMin) / (yMax - yMin))
			if col < 0 || col >= opts.Width || row < 0 || row >= opts.Height {
				continue
			}
			grid[opts.Height-1-row][col] = sym
		}
	}
	yLabel := func(v float64) string {
		if opts.LogY {
			return fmt.Sprintf("%.3g", math.Pow(10, v))
		}
		return fmt.Sprintf("%.3g", v)
	}
	topLabel, botLabel := yLabel(yMax), yLabel(yMin)
	labelWidth := len(topLabel)
	if len(botLabel) > labelWidth {
		labelWidth = len(botLabel)
	}
	for i, row := range grid {
		label := strings.Repeat(" ", labelWidth)
		if i == 0 {
			label = fmt.Sprintf("%*s", labelWidth, topLabel)
		}
		if i == opts.Height-1 {
			label = fmt.Sprintf("%*s", labelWidth, botLabel)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", labelWidth), strings.Repeat("-", opts.Width))
	fmt.Fprintf(&b, "%s  %-*.6g%*.6g\n", strings.Repeat(" ", labelWidth), opts.Width/2, xMin, opts.Width-opts.Width/2, xMax)
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", symbols[si%len(symbols)], s.Name)
	}
	return b.String()
}

func transformY(v float64, logY bool, floor float64) float64 {
	if !logY {
		return v
	}
	if v <= 0 {
		return floor
	}
	return math.Log10(v)
}

func bounds(series []Series, logY bool) (xMin, xMax, yMin, yMax float64, any bool) {
	xMin, yMin = math.Inf(1), math.Inf(1)
	xMax, yMax = math.Inf(-1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			y := s.Y[i]
			if logY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			any = true
			xMin = math.Min(xMin, s.X[i])
			xMax = math.Max(xMax, s.X[i])
			yMin = math.Min(yMin, y)
			yMax = math.Max(yMax, y)
		}
	}
	if logY && any {
		// Give zero-valued points a visible floor one decade down.
		yMin--
	}
	return xMin, xMax, yMin, yMax, any
}

// Bars renders a horizontal bar chart of labeled values.
func Bars(title string, labels []string, values []float64, width int) string {
	if width <= 0 {
		width = 50
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	if len(labels) != len(values) || len(labels) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	maxV := 0.0
	maxL := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	for i, v := range values {
		n := int(float64(width) * v / maxV)
		if v > 0 && n == 0 {
			n = 1
		}
		fmt.Fprintf(&b, "%-*s |%s %.6g\n", maxL, labels[i], strings.Repeat("█", n), v)
	}
	return b.String()
}
