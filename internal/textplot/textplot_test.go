package textplot

import (
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	s := Series{Name: "line", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}}
	out := Render("title", []Series{s}, Options{Width: 20, Height: 5})
	if !strings.Contains(out, "title") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "* line") {
		t.Error("legend missing")
	}
	if !strings.Contains(out, "*") {
		t.Error("no points plotted")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// title + 5 grid rows + axis + x labels + legend = 9
	if len(lines) != 9 {
		t.Errorf("rendered %d lines, want 9:\n%s", len(lines), out)
	}
}

func TestRenderEmpty(t *testing.T) {
	out := Render("t", nil, Options{})
	if !strings.Contains(out, "no data") {
		t.Error("empty render should say no data")
	}
	out = Render("t", []Series{{Name: "e"}}, Options{})
	if !strings.Contains(out, "no data") {
		t.Error("series with no points should say no data")
	}
}

func TestRenderConstantSeries(t *testing.T) {
	s := Series{Name: "flat", X: []float64{0, 1}, Y: []float64{5, 5}}
	out := Render("", []Series{s}, Options{Width: 10, Height: 3})
	if !strings.Contains(out, "*") {
		t.Error("constant series not plotted")
	}
}

func TestRenderLogY(t *testing.T) {
	s := Series{Name: "log", X: []float64{0, 1, 2}, Y: []float64{1, 100, 10000}}
	out := Render("", []Series{s}, Options{Width: 30, Height: 10, LogY: true})
	if !strings.Contains(out, "1e+04") && !strings.Contains(out, "10000") {
		t.Errorf("log axis label missing:\n%s", out)
	}
	// Zero values must not panic under log.
	z := Series{Name: "zeros", X: []float64{0, 1}, Y: []float64{0, 10}}
	_ = Render("", []Series{z}, Options{LogY: true})
}

func TestRenderMultipleSeriesSymbols(t *testing.T) {
	a := Series{Name: "a", X: []float64{0, 1}, Y: []float64{0, 1}}
	b := Series{Name: "b", X: []float64{0, 1}, Y: []float64{1, 0}}
	out := Render("", []Series{a, b}, Options{Width: 10, Height: 4})
	if !strings.Contains(out, "* a") || !strings.Contains(out, "+ b") {
		t.Errorf("per-series symbols missing:\n%s", out)
	}
}

func TestBars(t *testing.T) {
	out := Bars("bars", []string{"x", "longer"}, []float64{1, 4}, 8)
	if !strings.Contains(out, "bars") || !strings.Contains(out, "longer") {
		t.Error("labels missing")
	}
	// The larger value gets the full width; the smaller a shorter bar.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	if strings.Count(lines[2], "█") <= strings.Count(lines[1], "█") {
		t.Error("bar lengths not proportional")
	}
}

func TestBarsDegenerate(t *testing.T) {
	if out := Bars("t", nil, nil, 10); !strings.Contains(out, "no data") {
		t.Error("empty bars should say no data")
	}
	if out := Bars("t", []string{"a"}, []float64{1, 2}, 10); !strings.Contains(out, "no data") {
		t.Error("mismatched lengths should say no data")
	}
	// All-zero values must not divide by zero.
	out := Bars("t", []string{"a"}, []float64{0}, 10)
	if !strings.Contains(out, "a") {
		t.Error("zero-value bars missing label")
	}
}
