package faults

import (
	"encoding/json"
	"reflect"
	"testing"
)

// exampleConfig exercises every fault class at once.
func exampleConfig() Config {
	return Config{
		Seed: 42,
		Outages: []OutageConfig{
			{Block: "41.0.0.0/8", Start: 100, End: 500},
			{Block: "192.52.92.0/22", MeanUp: 300, MeanDown: 60},
		},
		Burst:     &BurstConfig{MeanGood: 120, MeanBad: 30, LossGood: 0.01, LossBad: 0.6},
		Misconfig: &MisconfigConfig{Fraction: 0.25, Mode: MisconfigInvert},
		Reporting: &ReportingConfig{Delay: 5, DupProb: 0.1},
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := exampleConfig()
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseConfig(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfg, back) {
		t.Fatalf("round trip changed the config:\n%+v\n%+v", cfg, back)
	}
	// Canonical: marshal is stable byte for byte.
	data2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatalf("marshal not canonical:\n%s\n%s", data, data2)
	}
}

func TestParseConfigRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		``,
		`{`,
		`{"burst":{"mean_good":1,"mean_bad":1,"loss_bad":7}}`,
		`{"outages":[{"block":"nope","start":0,"end":1}]}`,
		`{"typo_field":1}`,
		`{"reporting":{"delay":-3}}`,
	} {
		if _, err := ParseConfig([]byte(bad)); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestEmpty(t *testing.T) {
	if !(&Config{Seed: 9}).Empty() {
		t.Error("seed-only config not Empty")
	}
	cfg := exampleConfig()
	if cfg.Empty() {
		t.Error("full config reported Empty")
	}
}

// FuzzConfigJSON is the fault-plan round-trip fuzz target: any bytes that
// parse as a valid Config must re-marshal and re-parse to the identical
// value, and compiling the result must never panic.
func FuzzConfigJSON(f *testing.F) {
	seed, err := json.Marshal(exampleConfig())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"seed":1,"outages":[{"block":"10.0.0.0/24","mean_up":1,"mean_down":2}]}`))
	f.Add([]byte(`{"burst":{"mean_good":1e9,"mean_bad":0.001,"loss_good":0,"loss_bad":1}}`))
	f.Add([]byte(`{"misconfig":{"fraction":1,"mode":"gap"}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := ParseConfig(data)
		if err != nil {
			return // invalid input is fine; crashing on it is not
		}
		out, err := json.Marshal(cfg)
		if err != nil {
			t.Fatalf("valid config failed to marshal: %v", err)
		}
		back, err := ParseConfig(out)
		if err != nil {
			t.Fatalf("re-parse of %s failed: %v", out, err)
		}
		if !reflect.DeepEqual(cfg, back) {
			t.Fatalf("round trip diverged:\n%+v\n%+v", cfg, back)
		}
		if _, err := Compile(cfg, 100); err != nil {
			t.Fatalf("valid config failed to compile: %v", err)
		}
	})
}
