package faults

import (
	"fmt"

	"repro/internal/trace"
)

// TraceCursor emits fault-plan state transitions into a flight recorder.
// The drivers hold one per run and call Observe once per tick: the cursor
// compares the plan's current burst state and outage count against the
// previous tick's and appends a trace.KindFault event per change, so a
// trace shows *when* the channel went bad and *when* sensor blocks
// dropped out, not just that a plan was attached.
//
// The zero value starts from the fault-free baseline (good channel, zero
// withdrawn blocks), so a plan that is already degraded at t=0 emits its
// transitions on the first Observe. Observing draws no randomness — plan
// queries are pure reads — and a nil recorder or nil plan records
// nothing, keeping trace-off runs byte-identical.
type TraceCursor struct {
	burst bool
	down  int
}

// Observe appends fault-transition events for tick (at simulated time t)
// to rec, comparing plan state against the previous observation.
func (c *TraceCursor) Observe(rec *trace.Recorder, plan *Plan, tick int, t float64) {
	if rec == nil || plan == nil {
		return
	}
	if bad := plan.BurstBad(t); bad != c.burst {
		c.burst = bad
		detail := "good"
		if bad {
			detail = "bad"
		}
		rec.Append(trace.Event{Tick: tick, T: t, Kind: trace.KindFault, Agent: -1, Victim: -1, Vector: "burst", Detail: detail})
	}
	if down := plan.DownBlocks(t); down != c.down {
		c.down = down
		rec.Append(trace.Event{Tick: tick, T: t, Kind: trace.KindFault, Agent: -1, Victim: -1, Vector: "outage",
			N: uint64(down), Detail: fmt.Sprintf("%d blocks withdrawn", down)})
	}
}
