package faults

import (
	"testing"

	"repro/internal/ipv4"
	"repro/internal/netenv"
)

func TestCompileRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"bad block", Config{Outages: []OutageConfig{{Block: "not-a-cidr", Start: 0, End: 10}}}},
		{"inverted window", Config{Outages: []OutageConfig{{Block: "41.0.0.0/8", Start: 10, End: 5}}}},
		{"half flap", Config{Outages: []OutageConfig{{Block: "41.0.0.0/8", MeanUp: 10}}}},
		{"no shape", Config{Outages: []OutageConfig{{Block: "41.0.0.0/8"}}}},
		{"overlapping blocks", Config{Outages: []OutageConfig{
			{Block: "41.0.0.0/8", Start: 0, End: 10},
			{Block: "41.5.0.0/16", Start: 0, End: 10},
		}}},
		{"burst zero dwell", Config{Burst: &BurstConfig{MeanGood: 0, MeanBad: 1, LossBad: 0.5}}},
		{"burst loss out of range", Config{Burst: &BurstConfig{MeanGood: 1, MeanBad: 1, LossBad: 1.5}}},
		{"misconfig mode", Config{Misconfig: &MisconfigConfig{Fraction: 0.5, Mode: "scramble"}}},
		{"misconfig fraction", Config{Misconfig: &MisconfigConfig{Fraction: -0.1, Mode: MisconfigGap}}},
		{"reporting dup", Config{Reporting: &ReportingConfig{Delay: 1, DupProb: 2}}},
		{"negative delay", Config{Reporting: &ReportingConfig{Delay: -1}}},
	}
	for _, tc := range cases {
		if _, err := Compile(tc.cfg, 100); err == nil {
			t.Errorf("%s: compiled without error", tc.name)
		}
	}
	if _, err := Compile(Config{}, 0); err == nil {
		t.Error("zero horizon accepted")
	}
}

func TestNilPlanIsFaultFree(t *testing.T) {
	var p *Plan
	if p.SensorDown(ipv4.MustParseAddr("41.0.0.1"), 50) {
		t.Error("nil plan reported a sensor down")
	}
	if p.BurstLoss(50) != 0 || p.BurstBad(50) {
		t.Error("nil plan reported burst loss")
	}
	if p.DownBlocks(50) != 0 || p.DownSpace().Size() != 0 {
		t.Error("nil plan reported down blocks")
	}
	if p.NewReporter(func(_, _ ipv4.Addr) {}) != nil {
		t.Error("nil plan built a reporter")
	}
	orgs := netenv.SynthesizeOrgs(netenv.DefaultOrgModel(1))
	out, names := p.Misconfigure(orgs)
	if len(names) != 0 {
		t.Error("nil plan misconfigured orgs")
	}
	for i := range orgs {
		if out[i].EgressDrop != orgs[i].EgressDrop {
			t.Error("nil plan changed an egress policy")
		}
	}
}

func TestScheduledOutageWindow(t *testing.T) {
	p := MustCompile(Config{Outages: []OutageConfig{
		{Block: "41.0.0.0/8", Start: 100, End: 200},
	}}, 1000)
	in := ipv4.MustParseAddr("41.7.7.7")
	out := ipv4.MustParseAddr("42.7.7.7")
	for _, tc := range []struct {
		t    float64
		want bool
	}{{0, false}, {99.9, false}, {100, true}, {199.9, true}, {200, false}, {999, false}} {
		if got := p.SensorDown(in, tc.t); got != tc.want {
			t.Errorf("SensorDown(in-block, %v) = %v, want %v", tc.t, got, tc.want)
		}
	}
	if p.SensorDown(out, 150) {
		t.Error("outage leaked outside its block")
	}
	if p.DownBlocks(150) != 1 || p.DownBlocks(50) != 0 {
		t.Error("DownBlocks miscounted")
	}
	if !p.DownSpace().Contains(in) || p.DownSpace().Contains(out) {
		t.Error("DownSpace wrong")
	}
}

func TestFlappingOutageIsDeterministicAndPlausible(t *testing.T) {
	cfg := Config{Seed: 7, Outages: []OutageConfig{
		{Block: "41.0.0.0/8", MeanUp: 50, MeanDown: 50},
	}}
	a := MustCompile(cfg, 10000)
	b := MustCompile(cfg, 10000)
	addr := ipv4.MustParseAddr("41.1.2.3")
	downSeconds := 0
	for tick := 0; tick < 10000; tick++ {
		t1 := float64(tick)
		if a.SensorDown(addr, t1) != b.SensorDown(addr, t1) {
			t.Fatalf("two compilations disagree at t=%v", t1)
		}
		if a.SensorDown(addr, t1) {
			downSeconds++
		}
	}
	// Equal dwell means put the stationary down fraction at 1/2; a run of
	// 10000s should land in a broad band around it.
	if downSeconds < 2500 || downSeconds > 7500 {
		t.Errorf("down fraction %.2f implausible for equal dwell means", float64(downSeconds)/10000)
	}
	// A different plan seed flips a different timeline.
	cfg2 := cfg
	cfg2.Seed = 8
	c := MustCompile(cfg2, 10000)
	same := 0
	for tick := 0; tick < 10000; tick++ {
		if a.SensorDown(addr, float64(tick)) == c.SensorDown(addr, float64(tick)) {
			same++
		}
	}
	if same == 10000 {
		t.Error("changing the plan seed did not change the flap timeline")
	}
}

func TestBurstChannelStates(t *testing.T) {
	cfg := Config{Seed: 3, Burst: &BurstConfig{
		MeanGood: 100, MeanBad: 25, LossGood: 0.01, LossBad: 0.8,
	}}
	p := MustCompile(cfg, 20000)
	good, bad := 0, 0
	for tick := 0; tick < 20000; tick++ {
		switch p.BurstLoss(float64(tick)) {
		case cfg.Burst.LossGood:
			good++
		case cfg.Burst.LossBad:
			bad++
			if !p.BurstBad(float64(tick)) {
				t.Fatal("LossBad while BurstBad is false")
			}
		default:
			t.Fatal("burst loss outside the two states")
		}
	}
	if bad == 0 || good == 0 {
		t.Fatalf("channel never visited both states (good=%d bad=%d)", good, bad)
	}
	// Stationary bad fraction is 25/125 = 20%; accept a broad band.
	frac := float64(bad) / 20000
	if frac < 0.05 || frac > 0.45 {
		t.Errorf("bad-state fraction %.2f implausible for 100/25 dwell means", frac)
	}
	if got, want := cfg.Burst.MeanLoss(), (100*0.01+25*0.8)/125; got != want {
		t.Errorf("MeanLoss = %v, want %v", got, want)
	}
}

func TestMisconfigureNestedSelection(t *testing.T) {
	orgs := netenv.SynthesizeOrgs(netenv.DefaultOrgModel(1))
	mk := func(frac float64, mode string) ([]netenv.Org, []string) {
		p := MustCompile(Config{Seed: 11, Misconfig: &MisconfigConfig{Fraction: frac, Mode: mode}}, 10)
		return p.Misconfigure(orgs)
	}
	smallOut, small := mk(0.25, MisconfigGap)
	_, large := mk(0.75, MisconfigGap)
	if len(small) == 0 || len(large) <= len(small) {
		t.Fatalf("selection sizes: %d then %d", len(small), len(large))
	}
	// Growing the fraction must corrupt a superset: the selection order is
	// pinned by the plan seed, not the fraction.
	for i, name := range small {
		if large[i] != name {
			t.Fatalf("selection order changed with fraction: %v vs %v", small, large)
		}
	}
	byName := make(map[string]netenv.Org)
	for _, o := range smallOut {
		byName[o.Name] = o
	}
	for _, name := range small {
		if byName[name].EgressDrop != 0 {
			t.Errorf("gap mode left %s with drop %v", name, byName[name].EgressDrop)
		}
	}
	invOut, invNames := mk(0.25, MisconfigInvert)
	orig := make(map[string]float64)
	for _, o := range orgs {
		orig[o.Name] = o.EgressDrop
	}
	for _, o := range invOut {
		inverted := false
		for _, n := range invNames {
			if n == o.Name {
				inverted = true
			}
		}
		want := orig[o.Name]
		if inverted {
			want = 1 - want
		}
		if o.EgressDrop != want {
			t.Errorf("%s: drop %v, want %v (inverted=%v)", o.Name, o.EgressDrop, want, inverted)
		}
	}
}

func TestReporterDelayDuplicationAndFlush(t *testing.T) {
	p := MustCompile(Config{Seed: 5, Reporting: &ReportingConfig{Delay: 10, DupProb: 0}}, 100)
	var got []ipv4.Addr
	rep := p.NewReporter(func(_, dst ipv4.Addr) { got = append(got, dst) })
	rep.Advance(0)
	rep.Report(1, 100)
	rep.Report(2, 200)
	if len(got) != 0 {
		t.Fatal("reports delivered before their delay")
	}
	rep.Advance(9.9)
	if len(got) != 0 {
		t.Fatal("reports delivered early")
	}
	rep.Advance(10)
	if len(got) != 2 || got[0] != 100 || got[1] != 200 {
		t.Fatalf("delivery order wrong: %v", got)
	}
	rep.Advance(50)
	rep.Report(3, 300)
	if rep.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", rep.Pending())
	}
	rep.Flush()
	if rep.Pending() != 0 || len(got) != 3 {
		t.Fatalf("flush left pending=%d delivered=%d", rep.Pending(), len(got))
	}

	// Always-duplicate: every observation arrives twice.
	pd := MustCompile(Config{Seed: 5, Reporting: &ReportingConfig{Delay: 0, DupProb: 1}}, 100)
	var n int
	rd := pd.NewReporter(func(_, _ ipv4.Addr) { n++ })
	rd.Advance(1)
	rd.RecordHit(42)
	rd.RecordHit(43)
	if n != 4 || rd.Duplicated() != 2 || rd.Observed() != 2 {
		t.Fatalf("dup accounting: delivered=%d dupes=%d observed=%d", n, rd.Duplicated(), rd.Observed())
	}
}
