package faults

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"repro/internal/ipv4"
)

// Config is the JSON-serializable description of a fault plan. The zero
// value describes a fault-free world; every field composes independently.
// Config is the wire format (checkpoint files, CLI flags, fuzz corpus);
// Compile turns it into the Plan the simulation drivers query.
type Config struct {
	// Seed drives every random choice the plan makes (dwell times,
	// misconfigured-org selection, report duplication). It is independent
	// of the simulation seed so one outbreak can be replayed under many
	// fault draws and vice versa.
	Seed uint64 `json:"seed"`
	// Outages withdraw sensor blocks from service.
	Outages []OutageConfig `json:"outages,omitempty"`
	// Burst replaces the environment's uniform loss with a two-state
	// Gilbert–Elliott channel.
	Burst *BurstConfig `json:"burst,omitempty"`
	// Misconfig silently corrupts a fraction of org egress policies.
	Misconfig *MisconfigConfig `json:"misconfig,omitempty"`
	// Reporting delays and duplicates sensor reports.
	Reporting *ReportingConfig `json:"reporting,omitempty"`
}

// OutageConfig withdraws one darknet block. Two shapes compose:
//
//   - Scheduled: the block is down for the window [Start, End) in
//     simulated seconds (a maintenance window, a dead sensor when End
//     covers the horizon).
//   - Flapping: the block alternates up and down with exponentially
//     distributed dwell times (a Markov on/off process) of means MeanUp
//     and MeanDown seconds.
//
// A block with both is down whenever either says so.
type OutageConfig struct {
	// Block is the withdrawn block in CIDR notation ("41.0.0.0/8").
	Block string `json:"block"`
	// Start and End bound the scheduled window; equal values (incl. the
	// zero value) mean no scheduled outage.
	Start float64 `json:"start,omitempty"`
	End   float64 `json:"end,omitempty"`
	// MeanUp and MeanDown are the flapping dwell means in seconds; both
	// zero means no flapping.
	MeanUp   float64 `json:"mean_up,omitempty"`
	MeanDown float64 `json:"mean_down,omitempty"`
}

// BurstConfig is a Gilbert–Elliott two-state loss channel: the network
// dwells in a good state losing LossGood of probes, then bursts into a bad
// state losing LossBad, with exponentially distributed dwell times. It
// models the congestion collapse and route instability the paper lists
// under "failures and misconfiguration" — loss that arrives in bursts, not
// as a uniform coin flip.
type BurstConfig struct {
	// MeanGood and MeanBad are the state dwell means in seconds.
	MeanGood float64 `json:"mean_good"`
	MeanBad  float64 `json:"mean_bad"`
	// LossGood and LossBad are the per-probe loss probabilities in each
	// state.
	LossGood float64 `json:"loss_good"`
	LossBad  float64 `json:"loss_bad"`
}

// MeanLoss returns the channel's stationary loss rate — the uniform
// LossRate this burst process averages out to.
func (b *BurstConfig) MeanLoss() float64 {
	total := b.MeanGood + b.MeanBad
	if total <= 0 {
		return 0
	}
	return (b.MeanGood*b.LossGood + b.MeanBad*b.LossBad) / total
}

// Misconfiguration modes.
const (
	// MisconfigInvert flips an org's egress drop probability to its
	// complement: a strict enterprise filter silently becomes a sieve and
	// a transparent ISP border becomes a black hole.
	MisconfigInvert = "invert"
	// MisconfigGap zeroes the drop probability: the filter is configured
	// but not applied (the classic silently-failed ACL push).
	MisconfigGap = "gap"
)

// MisconfigConfig corrupts a deterministic fraction of org egress
// policies.
type MisconfigConfig struct {
	// Fraction of orgs whose egress policy is corrupted, in [0,1].
	Fraction float64 `json:"fraction"`
	// Mode is MisconfigInvert or MisconfigGap.
	Mode string `json:"mode"`
}

// ReportingConfig delays and duplicates the reports sensors deliver to
// the detection layer (a congested collector, an at-least-once queue).
type ReportingConfig struct {
	// Delay is the seconds between a sensor observing a probe and the
	// detector receiving the report.
	Delay float64 `json:"delay"`
	// DupProb is the probability a report is delivered twice.
	DupProb float64 `json:"dup_prob"`
}

// validProb reports whether p is a probability (finite, in [0,1]).
func validProb(p float64) bool {
	return !math.IsNaN(p) && p >= 0 && p <= 1
}

// validNonNeg reports whether v is finite and non-negative.
func validNonNeg(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v >= 0
}

// Validate checks the configuration without compiling it.
func (c *Config) Validate() error {
	for i, o := range c.Outages {
		if _, err := ipv4.ParsePrefix(o.Block); err != nil {
			return fmt.Errorf("faults: outage %d: %w", i, err)
		}
		if !validNonNeg(o.Start) || !validNonNeg(o.End) || o.End < o.Start {
			return fmt.Errorf("faults: outage %d: window [%v,%v) invalid", i, o.Start, o.End)
		}
		if !validNonNeg(o.MeanUp) || !validNonNeg(o.MeanDown) {
			return fmt.Errorf("faults: outage %d: dwell means must be finite and non-negative", i)
		}
		if (o.MeanUp > 0) != (o.MeanDown > 0) {
			return fmt.Errorf("faults: outage %d: flapping needs both mean_up and mean_down", i)
		}
		if o.End == o.Start && o.MeanUp == 0 {
			return fmt.Errorf("faults: outage %d: neither a scheduled window nor flapping dwell times", i)
		}
	}
	if b := c.Burst; b != nil {
		if !validNonNeg(b.MeanGood) || !validNonNeg(b.MeanBad) || b.MeanGood <= 0 || b.MeanBad <= 0 {
			return errors.New("faults: burst dwell means must be positive and finite")
		}
		if !validProb(b.LossGood) || !validProb(b.LossBad) {
			return errors.New("faults: burst loss rates must be probabilities in [0,1]")
		}
	}
	if m := c.Misconfig; m != nil {
		if !validProb(m.Fraction) {
			return errors.New("faults: misconfig fraction must be in [0,1]")
		}
		if m.Mode != MisconfigInvert && m.Mode != MisconfigGap {
			return fmt.Errorf("faults: unknown misconfig mode %q (%s|%s)", m.Mode, MisconfigInvert, MisconfigGap)
		}
	}
	if r := c.Reporting; r != nil {
		if !validNonNeg(r.Delay) {
			return errors.New("faults: reporting delay must be finite and non-negative")
		}
		if !validProb(r.DupProb) {
			return errors.New("faults: reporting dup_prob must be in [0,1]")
		}
	}
	return nil
}

// Empty reports whether the config describes no faults at all.
func (c *Config) Empty() bool {
	return len(c.Outages) == 0 && c.Burst == nil && c.Misconfig == nil && c.Reporting == nil
}

// ParseConfig decodes and validates a JSON fault plan. Unknown fields are
// rejected so a typo'd knob fails loudly instead of silently running the
// fault-free plan.
func ParseConfig(data []byte) (Config, error) {
	var cfg Config
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("faults: parse config: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	// Normalize `"outages": []` to nil: omitempty drops the empty slice on
	// marshal, so keeping it non-nil would break the re-parse round trip.
	if len(cfg.Outages) == 0 {
		cfg.Outages = nil
	}
	return cfg, nil
}
