// Package faults is the deterministic fault-injection engine: it turns a
// seeded, JSON-serializable Config into a compiled Plan the simulation
// drivers query probe by probe and tick by tick.
//
// The paper names failures and misconfiguration as a first-class
// environmental root cause of hotspots (alongside filtering policy and
// topology), and its Section 5 detection results implicitly assume a fully
// healthy sensor fleet. This package makes both assumptions adjustable:
//
//   - Sensor outages — scheduled withdrawals and Markov up/down flapping of
//     darknet blocks, the realistic degradation of an IMS-style fleet.
//   - Bursty probe loss — a Gilbert–Elliott two-state channel replacing the
//     uniform loss coin flip.
//   - Misconfigured egress policy — a fraction of org borders whose
//     filtering silently inverts or gaps.
//   - Degraded reporting — sensor reports delayed and duplicated on the way
//     to the detection layer.
//
// Determinism is the package contract: every random choice derives from the
// plan's own seed through internal/rng, every timeline is compiled up front
// against an explicit horizon, and no wall-clock time is consulted. Two
// compilations of the same Config over the same horizon answer every query
// identically.
package faults

import (
	"fmt"
	"sort"

	"repro/internal/ipv4"
	"repro/internal/netenv"
	"repro/internal/rng"
)

// span is one half-open interval [start, end) of simulated seconds.
type span struct {
	start, end float64
}

// timeline is a sorted, disjoint list of down (or bad) spans.
type timeline []span

// covers reports whether t falls inside any span.
func (tl timeline) covers(t float64) bool {
	i := sort.Search(len(tl), func(i int) bool { return tl[i].end > t })
	return i < len(tl) && tl[i].start <= t
}

// maxSpansPerTimeline bounds one process's compiled spans. Compile rejects
// configs expected to exceed it; the hard cap below is the backstop against
// adversarial dwell draws (underflowed exponentials that stall t).
const maxSpansPerTimeline = 1 << 20

// alternating builds the on/off process timeline: starting in the "up"
// state, dwell times are exponential draws with the given means, and the
// returned spans are the "down" periods inside [0, horizon).
func alternating(r *rng.Xoshiro, meanUp, meanDown, horizon float64) timeline {
	var tl timeline
	t := 0.0
	for t < horizon && len(tl) < maxSpansPerTimeline {
		t += r.Exponential(meanUp)
		if t >= horizon {
			break
		}
		down := r.Exponential(meanDown)
		tl = append(tl, span{start: t, end: t + down})
		t += down
	}
	return tl
}

// checkDwell rejects dwell means so small relative to the horizon that the
// compiled timeline would be absurdly fine (and slow): the expected span
// count must stay under maxSpansPerTimeline.
func checkDwell(what string, meanUp, meanDown, horizon float64) error {
	if horizon/(meanUp+meanDown) > maxSpansPerTimeline {
		return fmt.Errorf("faults: %s dwell means (%v up, %v down) too small for horizon %v", what, meanUp, meanDown, horizon)
	}
	return nil
}

// merge folds overlapping spans into a sorted disjoint timeline.
func merge(spans []span) timeline {
	if len(spans) == 0 {
		return nil
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
	out := timeline{spans[0]}
	for _, s := range spans[1:] {
		last := &out[len(out)-1]
		if s.start <= last.end {
			if s.end > last.end {
				last.end = s.end
			}
			continue
		}
		out = append(out, s)
	}
	return out
}

// outage is one compiled block withdrawal.
type outage struct {
	prefix ipv4.Prefix
	down   timeline
}

// Plan is a compiled fault plan. A nil *Plan is valid and describes a
// fault-free world: every query method is safe on a nil receiver, so
// drivers call them unconditionally.
type Plan struct {
	cfg     Config
	horizon float64
	// outages are sorted by block start address for binary-search routing;
	// Compile rejects overlapping blocks, mirroring sensor.NewFleet.
	outages []outage
	burst   timeline // spans where the channel is in the bad state
}

// Compile builds the plan's timelines over [0, horizon) simulated seconds.
// Queries beyond the horizon report the fault-free state, so the horizon
// must cover the simulation's MaxSeconds (the sim drivers enforce this).
func Compile(cfg Config, horizon float64) (*Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !validNonNeg(horizon) || horizon <= 0 {
		return nil, fmt.Errorf("faults: horizon %v must be positive and finite", horizon)
	}
	p := &Plan{cfg: cfg, horizon: horizon}
	for i, oc := range cfg.Outages {
		prefix := ipv4.MustParsePrefix(oc.Block) // Validate parsed it already
		var spans []span
		if oc.End > oc.Start {
			end := oc.End
			if end > horizon {
				end = horizon
			}
			if oc.Start < horizon {
				spans = append(spans, span{start: oc.Start, end: end})
			}
		}
		if oc.MeanUp > 0 {
			if err := checkDwell(fmt.Sprintf("outage %d", i), oc.MeanUp, oc.MeanDown, horizon); err != nil {
				return nil, err
			}
			// Each block flaps on its own stream so adding an outage never
			// shifts another block's timeline.
			r := rng.NewXoshiro(rng.Mix64(cfg.Seed ^ uint64(prefix.First())<<8 ^ uint64(i)))
			spans = append(spans, alternating(r, oc.MeanUp, oc.MeanDown, horizon)...)
		}
		p.outages = append(p.outages, outage{prefix: prefix, down: merge(spans)})
	}
	sort.Slice(p.outages, func(i, j int) bool {
		return p.outages[i].prefix.First() < p.outages[j].prefix.First()
	})
	for i := 1; i < len(p.outages); i++ {
		prev, cur := p.outages[i-1].prefix, p.outages[i].prefix
		if prev.Last() >= cur.First() {
			return nil, fmt.Errorf("faults: outage blocks %v and %v overlap", prev, cur)
		}
	}
	if b := cfg.Burst; b != nil {
		if err := checkDwell("burst", b.MeanGood, b.MeanBad, horizon); err != nil {
			return nil, err
		}
		r := rng.NewXoshiro(rng.Mix64(cfg.Seed ^ 0x6275727374)) // "burst"
		p.burst = alternating(r, b.MeanGood, b.MeanBad, horizon)
	}
	return p, nil
}

// MustCompile is like Compile but panics on error.
func MustCompile(cfg Config, horizon float64) *Plan {
	p, err := Compile(cfg, horizon)
	if err != nil {
		panic(err)
	}
	return p
}

// Config returns the plan's source configuration (zero value for nil).
func (p *Plan) Config() Config {
	if p == nil {
		return Config{}
	}
	return p.cfg
}

// Horizon returns the compiled horizon in simulated seconds (0 for nil).
func (p *Plan) Horizon() float64 {
	if p == nil {
		return 0
	}
	return p.horizon
}

// SensorDown reports whether the sensor block containing dst is withdrawn
// at simulated time t.
func (p *Plan) SensorDown(dst ipv4.Addr, t float64) bool {
	if p == nil || len(p.outages) == 0 {
		return false
	}
	i := sort.Search(len(p.outages), func(i int) bool {
		return p.outages[i].prefix.Last() >= dst
	})
	if i >= len(p.outages) || !p.outages[i].prefix.Contains(dst) {
		return false
	}
	return p.outages[i].down.covers(t)
}

// DownBlocks returns how many outage blocks are down at time t.
func (p *Plan) DownBlocks(t float64) int {
	if p == nil {
		return 0
	}
	n := 0
	for _, o := range p.outages {
		if o.down.covers(t) {
			n++
		}
	}
	return n
}

// DownSpace returns the union of blocks that are ever down during the
// horizon — the space an operator should treat as unreliable.
func (p *Plan) DownSpace() *ipv4.Set {
	set := &ipv4.Set{}
	if p == nil {
		return set
	}
	for _, o := range p.outages {
		if len(o.down) > 0 {
			set.AddPrefix(o.prefix)
		}
	}
	return set
}

// BurstLoss returns the channel's loss probability at time t (0 without a
// burst model).
func (p *Plan) BurstLoss(t float64) float64 {
	if p == nil || p.cfg.Burst == nil {
		return 0
	}
	if p.burst.covers(t) {
		return p.cfg.Burst.LossBad
	}
	return p.cfg.Burst.LossGood
}

// BurstBad reports whether the channel is in its bad state at time t.
func (p *Plan) BurstBad(t float64) bool {
	return p != nil && p.cfg.Burst != nil && p.burst.covers(t)
}

// Misconfigure returns a copy of orgs with the plan's misconfiguration
// applied, plus the names of the corrupted orgs (sorted by selection
// order). Selection is a deterministic seeded shuffle, so a growing
// Fraction corrupts a superset of the orgs a smaller Fraction corrupts.
func (p *Plan) Misconfigure(orgs []netenv.Org) ([]netenv.Org, []string) {
	out := make([]netenv.Org, len(orgs))
	copy(out, orgs)
	if p == nil || p.cfg.Misconfig == nil || len(orgs) == 0 {
		return out, nil
	}
	m := p.cfg.Misconfig
	n := int(m.Fraction*float64(len(orgs)) + 0.5)
	if n == 0 {
		return out, nil
	}
	if n > len(orgs) {
		n = len(orgs)
	}
	r := rng.NewXoshiro(rng.Mix64(p.cfg.Seed ^ 0x6d697363)) // "misc"
	order := r.SampleWithoutReplacement(len(orgs), len(orgs))
	var names []string
	for _, idx := range order[:n] {
		o := &out[idx]
		switch m.Mode {
		case MisconfigInvert:
			o.EgressDrop = 1 - o.EgressDrop
		case MisconfigGap:
			o.EgressDrop = 0
		}
		names = append(names, o.Name)
	}
	return out, names
}

// report is one queued sensor report.
type report struct {
	src, dst ipv4.Addr
	due      float64
}

// Reporter applies the plan's reporting faults between a sensor and its
// detector: reports are held for Delay simulated seconds and delivered in
// observation order when Advance passes their due time; each report is
// duplicated with probability DupProb. Duplication randomness comes from
// the reporter's own seeded stream, never the simulation's. Not safe for
// concurrent use.
type Reporter struct {
	deliver func(src, dst ipv4.Addr)
	delay   float64
	dup     float64
	r       *rng.Xoshiro
	now     float64
	queue   []report
	dupes   uint64
	total   uint64
}

// NewReporter wraps deliver with the plan's reporting faults. It returns
// nil when the plan has no reporting faults — callers treat a nil reporter
// as "call deliver directly".
func (p *Plan) NewReporter(deliver func(src, dst ipv4.Addr)) *Reporter {
	if p == nil || p.cfg.Reporting == nil {
		return nil
	}
	rc := p.cfg.Reporting
	return &Reporter{
		deliver: deliver,
		delay:   rc.Delay,
		dup:     rc.DupProb,
		r:       rng.NewXoshiro(rng.Mix64(p.cfg.Seed ^ 0x7265706f7274)), // "report"
	}
}

// Report queues one observation made at the reporter's current time.
func (rep *Reporter) Report(src, dst ipv4.Addr) {
	rep.total++
	n := 1
	if rep.dup > 0 && rep.r.Bernoulli(rep.dup) {
		rep.dupes++
		n = 2
	}
	for i := 0; i < n; i++ {
		rep.queue = append(rep.queue, report{src: src, dst: dst, due: rep.now + rep.delay})
	}
	if rep.delay == 0 {
		rep.flushDue()
	}
}

// RecordHit implements the sim drivers' hit-recorder shape for callers
// that have no source address.
func (rep *Reporter) RecordHit(dst ipv4.Addr) { rep.Report(0, dst) }

// Advance moves the reporter's clock to now and delivers every report due
// at or before it, in observation order.
func (rep *Reporter) Advance(now float64) {
	rep.now = now
	rep.flushDue()
}

func (rep *Reporter) flushDue() {
	i := 0
	for ; i < len(rep.queue) && rep.queue[i].due <= rep.now; i++ {
		rep.deliver(rep.queue[i].src, rep.queue[i].dst)
	}
	if i > 0 {
		rep.queue = rep.queue[i:]
	}
}

// Flush delivers every queued report regardless of due time (end of run).
func (rep *Reporter) Flush() {
	for _, q := range rep.queue {
		rep.deliver(q.src, q.dst)
	}
	rep.queue = rep.queue[:0]
}

// Pending returns the number of queued, undelivered reports.
func (rep *Reporter) Pending() int { return len(rep.queue) }

// Duplicated returns how many observations were duplicated.
func (rep *Reporter) Duplicated() uint64 { return rep.dupes }

// Observed returns how many observations were reported (before
// duplication).
func (rep *Reporter) Observed() uint64 { return rep.total }
