package hotspots

// The benchmark harness: one benchmark per table and figure of the paper
// (regenerating it at reduced scale per iteration), the ablation benches
// called out in DESIGN.md, and micro-benchmarks of the hot substrates.
//
// Run with: go test -bench=. -benchmem

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/detect"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/ipv4"
	"repro/internal/obs"
	"repro/internal/population"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/topo/proxgraph"
	"repro/internal/trace"
	"repro/internal/worm"
)

// benchExperiment runs a registered experiment once per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, uint64(i)+1, experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Tables) == 0 && len(res.Figures) == 0 {
			b.Fatal("experiment produced nothing")
		}
	}
}

// Table benchmarks.

func BenchmarkTable1BotCommands(b *testing.B)      { benchExperiment(b, "table1") }
func BenchmarkTable2FilteringLeakage(b *testing.B) { benchExperiment(b, "table2") }

// Figure benchmarks.

func BenchmarkFig1Blaster(b *testing.B)          { benchExperiment(b, "fig1") }
func BenchmarkFig2SlammerAggregate(b *testing.B) { benchExperiment(b, "fig2") }
func BenchmarkFig3SlammerPerHost(b *testing.B)   { benchExperiment(b, "fig3") }

func BenchmarkFig3cCycleCensus(b *testing.B) {
	m := worm.SlammerMap(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := m.TotalCycles(); got != 64 {
			b.Fatalf("census broke: %d cycles", got)
		}
	}
}

func BenchmarkFig4QuarantinedCRII(b *testing.B) { benchExperiment(b, "fig4") }

func BenchmarkFig5aHitListInfection(b *testing.B) { benchExperiment(b, "fig5a") }
func BenchmarkFig5bHitListDetection(b *testing.B) { benchExperiment(b, "fig5b") }
func BenchmarkFig5cPlacement(b *testing.B)        { benchExperiment(b, "fig5c") }

// Extension benchmarks.

func BenchmarkExtThreshold(b *testing.B)   { benchExperiment(b, "ext-threshold") }
func BenchmarkExtNATSweep(b *testing.B)    { benchExperiment(b, "ext-natsweep") }
func BenchmarkExtPrevalence(b *testing.B)  { benchExperiment(b, "ext-prevalence") }
func BenchmarkExtContainment(b *testing.B) { benchExperiment(b, "ext-containment") }
func BenchmarkExtWitty(b *testing.B)       { benchExperiment(b, "ext-witty") }
func BenchmarkExtIMS(b *testing.B)         { benchExperiment(b, "ext-ims") }
func BenchmarkExtFaults(b *testing.B)      { benchExperiment(b, "ext-faults") }

// Ablation benchmarks: each isolates one root cause by removing it.

// BenchmarkAblationSlammerIntendedB compares the cycle census of the
// corrupted increments against a proper odd increment (single full-period
// cycle — no trap states).
func BenchmarkAblationSlammerIntendedB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		corrupted := worm.SlammerMap(i % 3)
		proper := SlammerIntendedMap()
		if corrupted.TotalCycles() <= proper.TotalCycles() {
			b.Fatal("ablation inverted")
		}
	}
}

// BenchmarkAblationBlasterSeed runs Figure 1 with a well-seeded PRNG: the
// start-address clustering (and with it the hotspot spike) disappears.
func BenchmarkAblationBlasterSeed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultFig1(uint64(i) + 1)
		cfg.Hosts = 800
		cfg.MeanUptimeSeconds = 14400
		cfg.Ticks = worm.UniformTickModel{}
		if _, err := experiments.RunFig1(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCRIIUniform runs the CRII quarantine path with local
// preference disabled — the M-block hotspot vanishes.
func BenchmarkAblationCRIIUniform(b *testing.B) {
	own := ipv4.MustParseAddr("192.168.0.100")
	fleet, err := NewSensorFleet(IMSBlocks())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fleet.Reset()
		gen := worm.NewCodeRedIIUniform(own, uint32(i)+1)
		for p := 0; p < 200000; p++ {
			dst := gen.Next()
			if !dst.IsPrivate() {
				fleet.Observe(own, dst)
			}
		}
	}
}

// BenchmarkAblationFig2UniformSeeds runs the Slammer aggregate with
// uniformly random seeds: the aggregate non-uniformity vanishes (orbits of
// the affine map are arithmetic progressions).
func BenchmarkAblationFig2UniformSeeds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultFig2(uint64(i) + 1)
		cfg.Hosts = 8000
		cfg.WindowProbes = 1 << 21
		cfg.ClusteredSeedFraction = 0
		if _, err := experiments.RunFig2(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Micro-benchmarks of the hot substrates.

func BenchmarkUniformScanner(b *testing.B) {
	g := worm.NewUniform(1)
	b.ResetTimer()
	var sink ipv4.Addr
	for i := 0; i < b.N; i++ {
		sink = g.Next()
	}
	_ = sink
}

func BenchmarkSlammerScanner(b *testing.B) {
	g := worm.NewSlammer(1, 12345)
	b.ResetTimer()
	var sink ipv4.Addr
	for i := 0; i < b.N; i++ {
		sink = g.Next()
	}
	_ = sink
}

func BenchmarkCodeRedIIScanner(b *testing.B) {
	g := worm.NewCodeRedII(ipv4.MustParseAddr("18.31.0.5"), 7)
	b.ResetTimer()
	var sink ipv4.Addr
	for i := 0; i < b.N; i++ {
		sink = g.Next()
	}
	_ = sink
}

func BenchmarkBlasterStart(b *testing.B) {
	own := ipv4.MustParseAddr("141.212.10.5")
	var sink ipv4.Addr
	for i := 0; i < b.N; i++ {
		sink = worm.BlasterStart(own, uint32(i))
	}
	_ = sink
}

func BenchmarkAddrSetSelect(b *testing.B) {
	pop, err := population.Synthesize(population.Config{
		Size: 10000, Slash8s: 20, Slash16s: 400, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	prefixes, _ := worm.BuildGreedySlash16HitList(pop.Addrs(false), 400)
	set := ipv4.SetOfPrefixes(prefixes...)
	size := set.Size()
	b.ResetTimer()
	var sink ipv4.Addr
	for i := 0; i < b.N; i++ {
		sink = set.Select(uint64(i) % size)
	}
	_ = sink
}

func BenchmarkFastDriverEpidemic(b *testing.B) {
	pop, err := population.Synthesize(population.Config{
		Size: 5000, Slash8s: 10, Slash16s: 100, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.RunFast(sim.FastConfig{
			Pop:         pop,
			Model:       sim.NewCodeRedIIModel(),
			ScanRate:    1000,
			TickSeconds: 1,
			MaxSeconds:  200,
			SeedHosts:   10,
			Seed:        uint64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

// Snapshot benchmarks: the standard CodeRedII configurations tracked across
// PRs by scripts/bench.sh → BENCH_<date>.json. The *Metrics variants attach
// a live obs.Registry so the snapshot also prices the telemetry hot path,
// and the *Trace variant attaches a flight recorder so benchsnap can gate
// the recorder's overhead against the plain run.

func benchRunFastCodeRedII(b *testing.B, reg *obs.Registry, rec *trace.Recorder, workers int) {
	b.Helper()
	pop, err := population.Synthesize(population.DefaultCodeRedII(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.RunFast(sim.FastConfig{
			Pop:         pop,
			Model:       sim.NewCodeRedIIModel(),
			ScanRate:    10,
			TickSeconds: 1,
			MaxSeconds:  2000,
			SeedHosts:   25,
			Seed:        uint64(i) + 1,
			Workers:     workers,
			Metrics:     reg,
			Trace:       rec,
			Clock:       &obs.SimClock{},
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

func BenchmarkRunFastCodeRedII(b *testing.B) { benchRunFastCodeRedII(b, nil, nil, 1) }
func BenchmarkRunFastCodeRedIIMetrics(b *testing.B) {
	benchRunFastCodeRedII(b, obs.NewRegistry(), nil, 1)
}
func BenchmarkRunFastCodeRedIITrace(b *testing.B) {
	benchRunFastCodeRedII(b, nil, trace.NewRecorder(0), 1)
}

// BenchmarkRunFastCodeRedIIParallel runs the same workload through the fast
// driver's two-phase tick at GOMAXPROCS workers. On a single-CPU host it
// measures the draw/merge coordination overhead rather than a speedup; on
// multi-core hosts it tracks the parallel fast driver's scaling. Results are
// byte-identical to the serial benchmark's by the Workers contract
// (DESIGN.md §14).
func BenchmarkRunFastCodeRedIIParallel(b *testing.B) { benchRunFastCodeRedII(b, nil, nil, 0) }

// benchRunFastInternetScale drives a CodeRedII outbreak over an
// internet-scale synthetic population to half prevalence — the §14 scale
// contract's headline workload. Population synthesis sits outside the
// timed region; the measured run covers arena construction, the bitset
// live index, and the event-driven tick loop. Skipped under -short (the
// 10⁸-host population alone holds multiple GiB).
func benchRunFastInternetScale(b *testing.B, size, stop int) {
	b.Helper()
	if testing.Short() {
		b.Skip("internet-scale workload skipped under -short")
	}
	pop, err := population.Synthesize(population.InternetScale(size, 1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.RunFast(sim.FastConfig{
			Pop:              pop,
			Model:            sim.NewCodeRedIIModel(),
			ScanRate:         200,
			TickSeconds:      1,
			MaxSeconds:       600,
			SeedHosts:        25,
			Seed:             uint64(i) + 1,
			StopWhenInfected: stop,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Final.Infected < stop {
			b.Fatalf("outbreak stalled at %d/%d infected", res.Final.Infected, stop)
		}
	}
}

// The 10⁷-host leg runs the epidemic to half prevalence (the full logistic
// including its dense-/16 saturation tail); the 10⁸-host leg stops at ten
// million infections, which pins per-infection cost at full address-space
// scale while keeping snapshot turnaround bounded.
func BenchmarkRunFastInternetScale10M(b *testing.B) {
	benchRunFastInternetScale(b, 10_000_000, 5_000_000)
}

func BenchmarkRunFastInternetScale100M(b *testing.B) {
	benchRunFastInternetScale(b, 100_000_000, 10_000_000)
}

// BenchmarkRunFastProxGraph drives a neighbor-graph outbreak over a
// 100k-node mutual-kNN world to half prevalence. World construction sits
// outside the timed region; the measured run is the graph fast driver's
// thinned per-agent Poisson loop, which shares nothing with the IPv4
// arena path. It rides in the millisecond-scale snapshot leg so
// benchsnap -compare gates it alongside the CodeRedII legs — the pair
// proves the topology seam added a graph path without taxing the IPv4
// one.
func BenchmarkRunFastProxGraph(b *testing.B) {
	world, err := proxgraph.New(proxgraph.Config{
		Nodes: 100_000, Degree: 8, Sensors: 1000, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	const stop = 50_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.RunFast(sim.FastConfig{
			Topology:         world,
			ScanRate:         2,
			TickSeconds:      1,
			MaxSeconds:       600,
			SeedHosts:        25,
			Seed:             uint64(i) + 1,
			StopWhenInfected: stop,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Final.Infected < stop {
			b.Fatalf("outbreak stalled at %d/%d infected", res.Final.Infected, stop)
		}
	}
}

func benchRunExactCodeRedII(b *testing.B, reg *obs.Registry, workers int) {
	b.Helper()
	// A CodeRedII-shaped population small enough for the probe-exact
	// driver; StopWhenInfected caps the saturated tail.
	pop, err := population.Synthesize(population.Config{
		Size: 2000, Slash8s: 8, Slash16s: 40, Include192Slash8: true, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	// Force the lazily built address index before timing starts: with a
	// small b.N its one-time construction would otherwise dominate the
	// per-op numbers.
	pop.Lookup(pop.Host(0).Addr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.RunExact(sim.ExactConfig{
			Pop:              pop,
			Factory:          worm.CodeRedIIFactory{},
			ScanRate:         50,
			TickSeconds:      1,
			MaxSeconds:       30,
			SeedHosts:        10,
			Seed:             uint64(i) + 1,
			Workers:          workers,
			StopWhenInfected: pop.Size() / 2,
			Metrics:          reg,
			Clock:            &obs.SimClock{},
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

func BenchmarkRunExactCodeRedII(b *testing.B) { benchRunExactCodeRedII(b, nil, 1) }
func BenchmarkRunExactCodeRedIIMetrics(b *testing.B) {
	benchRunExactCodeRedII(b, obs.NewRegistry(), 1)
}

// BenchmarkRunExactCodeRedIIParallel runs the same workload through the
// worker pool at GOMAXPROCS. On a single-CPU host it measures the two-phase
// tick's coordination overhead rather than a speedup; on multi-core hosts it
// tracks the parallel driver's scaling. Results are byte-identical to the
// serial benchmark's by the Workers contract (DESIGN.md §9).
func BenchmarkRunExactCodeRedIIParallel(b *testing.B) { benchRunExactCodeRedII(b, nil, 0) }

func BenchmarkExactDriverProbes(b *testing.B) {
	pop, err := population.Synthesize(population.Config{
		Size: 1000, Slash8s: 5, Slash16s: 20, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	// Build the lazy address index outside the timed region.
	pop.Lookup(pop.Host(0).Addr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.RunExact(sim.ExactConfig{
			Pop:         pop,
			Factory:     worm.UniformFactory{},
			ScanRate:    1000,
			TickSeconds: 1,
			MaxSeconds:  20,
			SeedHosts:   10,
			Seed:        uint64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
}

// benchFleetObserve drives the detection-fleet hit path — per-probe
// RecordHit plus the per-tick service accounting — optionally under a fault
// plan that withdraws half the blocks (the down-mask and the per-probe
// SensorDown query the fast driver issues).
func benchFleetObserve(b *testing.B, withFaults bool) {
	b.Helper()
	prefixes := make([]ipv4.Prefix, 0, 255)
	for i := 1; i <= 255; i++ {
		prefixes = append(prefixes, ipv4.MustParsePrefix(fmt.Sprintf("192.%d.0.0/16", i)))
	}
	var plan *faults.Plan
	if withFaults {
		cfg := faults.Config{Seed: 1}
		for i := 0; i < len(prefixes); i += 2 {
			cfg.Outages = append(cfg.Outages, faults.OutageConfig{
				Block: prefixes[i].String(), Start: 0, End: 1e9,
			})
		}
		var err error
		plan, err = faults.Compile(cfg, 1e9)
		if err != nil {
			b.Fatal(err)
		}
	}
	// A fixed probe stream, ~half landing inside the fleet.
	r := rng.NewXoshiro(7)
	probes := make([]ipv4.Addr, 4096)
	for i := range probes {
		if i%2 == 0 {
			probes[i] = ipv4.Addr(0xC0000000 | r.Uint64n(1<<24)) // 192.0.0.0/8
		} else {
			probes[i] = ipv4.Addr(r.Uint64n(1 << 32))
		}
	}
	fleet := detect.MustNewThresholdFleet(prefixes, 25)
	if plan != nil {
		fleet.SetDownSet(plan.DownSpace())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := float64(i)
		for _, dst := range probes {
			if plan.SensorDown(dst, t) {
				continue
			}
			fleet.RecordHit(dst)
		}
		if fleet.NumUp() == 0 || fleet.AlertedFractionOfUp() < 0 {
			b.Fatal("fleet accounting broke")
		}
	}
}

func BenchmarkFleetObserve(b *testing.B)       { benchFleetObserve(b, false) }
func BenchmarkFleetObserveFaults(b *testing.B) { benchFleetObserve(b, true) }

// BenchmarkSweepResume measures the checkpoint replay path: every task is
// already in the store, so one iteration is a full resume — open the file,
// map the grid, serve all results from cache without running a task.
func BenchmarkSweepResume(b *testing.B) {
	const tasks = 256
	inputs := make([]int, tasks)
	for i := range inputs {
		inputs[i] = i
	}
	key := func(i, in int) string { return fmt.Sprintf("bench|task=%d", in) }
	path := b.TempDir() + "/resume.ckpt"
	cp, err := sweep.OpenCheckpoint(path)
	if err != nil {
		b.Fatal(err)
	}
	warm := func(_ context.Context, in int) (int, error) { return in * in, nil }
	if _, err := sweep.MapCheckpointed(context.Background(), inputs, key, warm, cp, sweep.Options{}); err != nil {
		b.Fatal(err)
	}
	cold := func(_ context.Context, in int) (int, error) {
		return 0, fmt.Errorf("task %d not served from cache", in)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp, err := sweep.OpenCheckpoint(path)
		if err != nil {
			b.Fatal(err)
		}
		out, err := sweep.MapCheckpointed(context.Background(), inputs, key, cold, cp, sweep.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(out) != tasks || out[3] != 9 {
			b.Fatal("resume returned wrong results")
		}
	}
}
