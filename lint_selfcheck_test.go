package hotspots_test

// This test makes the determinism and concurrency invariants
// self-enforcing: the full internal/lint suite runs over the repository on
// every `go test ./...`, so a regression in any rule — a stray math/rand
// import, a wall-clock read in a simulation package, a float ==, an
// unsynchronized goroutine write, a dropped error, a hard-coded seed, a
// nondeterminism source reaching a determinism root (detrace), an
// unsynchronized lazy init on a shared type (lazyinit), or a map
// iteration leaking its order (maporder) — fails the build. Suppressions
// require a written justification (//lint:ignore <rule> <reason> or
// //lint:deterministic <why>); reasonless directives are themselves
// findings.

import (
	"testing"

	"repro/internal/lint"
)

func TestRepositoryPassesLintSuite(t *testing.T) {
	prog, err := lint.Load(".")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Packages) < 20 {
		// Guard against silently linting an empty or truncated tree.
		t.Fatalf("loaded only %d packages; the loader is missing the repo", len(prog.Packages))
	}
	findings := lint.Run(prog, lint.Analyzers())
	baseline, err := lint.LoadBaseline("lint.baseline")
	if err != nil {
		t.Fatal(err)
	}
	fresh, stale := lint.FilterBaseline(findings, baseline)
	for _, f := range fresh {
		t.Errorf("%s", f)
	}
	for _, key := range stale {
		t.Errorf("stale baseline entry (the finding no longer fires — delete the line): %s", key)
	}
	if len(fresh) > 0 {
		t.Log("fix the findings or add //lint:ignore <rule> <reason> (or //lint:deterministic <why> for detrace) where the heuristic is wrong; see DESIGN.md §11")
	}
}

// TestTypedLayerCoversRepository pins the typed analysis engine to the
// real tree: the interesting packages must fully type-check (no silent
// degradation to syntactic fallbacks) and the call graph must see the
// determinism roots.
func TestTypedLayerCoversRepository(t *testing.T) {
	prog, err := lint.Load(".")
	if err != nil {
		t.Fatal(err)
	}
	prog.Check()
	for _, pkg := range prog.Packages {
		switch pkg.Rel {
		case "internal/sim", "internal/sweep", "internal/xcheck", "internal/experiments", "internal/ipv4":
			if !pkg.TypesOK() {
				t.Errorf("%s does not fully type-check: %v", pkg.Rel, pkg.TypeErrs)
			}
		}
	}
	g := prog.CallGraph()
	for _, root := range []struct{ rel, name string }{
		{"internal/sim", "RunExact"},
		{"internal/sim", "RunFast"},
		{"internal/sweep", "Run"},
		{"internal/xcheck", "CheckScenario"},
	} {
		if len(g.Lookup(root.rel, root.name)) == 0 {
			t.Errorf("call graph lost determinism root %s.%s", root.rel, root.name)
		}
	}
}
