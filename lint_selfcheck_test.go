package hotspots_test

// This test makes the determinism and concurrency invariants
// self-enforcing: the full internal/lint suite runs over the repository on
// every `go test ./...`, so a regression in any rule — a stray math/rand
// import, a wall-clock read in a simulation package, a float ==, an
// unsynchronized goroutine write, a dropped error, a hard-coded seed —
// fails the build. Suppressions require a written justification
// (//lint:ignore <rule> <reason>); reasonless directives are themselves
// findings.

import (
	"testing"

	"repro/internal/lint"
)

func TestRepositoryPassesLintSuite(t *testing.T) {
	prog, err := lint.Load(".")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Packages) < 20 {
		// Guard against silently linting an empty or truncated tree.
		t.Fatalf("loaded only %d packages; the loader is missing the repo", len(prog.Packages))
	}
	findings := lint.Run(prog, lint.Analyzers())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Log("fix the findings or add //lint:ignore <rule> <reason> where the heuristic is wrong; see README \"Static analysis & determinism guarantees\"")
	}
}
