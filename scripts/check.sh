#!/usr/bin/env bash
# Tier-1 gate: build, vet, the repo's own determinism/concurrency lint
# suite, the full test suite, and the race detector over the concurrent
# packages. CI runs exactly this script; run it locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go run ./cmd/reprolint -baseline lint.baseline ./..."
lint_start=$(date +%s)
mkdir -p .lint
if ! go run ./cmd/reprolint -baseline lint.baseline ./... | tee .lint/findings.txt; then
  # Machine-readable copy for the CI failure artifact / local tooling.
  go run ./cmd/reprolint -baseline lint.baseline -json ./... > .lint/findings.json || true
  echo "reprolint: findings recorded in .lint/findings.txt and .lint/findings.json"
  exit 1
fi
echo "reprolint: clean in $(( $(date +%s) - lint_start ))s (9 analyzers, typed whole-module pass)"

echo "==> go test ./..."
go test ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> go run ./cmd/xcheck -n 25 -budget 60s -trace-dir .trace"
go run ./cmd/xcheck -n 25 -budget 60s -trace-dir .trace

# Flight-recorder smoke: one traced CLI run end to end (record, dump,
# summarize) so a broken -trace path or NDJSON schema fails the gate with
# a one-line repro rather than surfacing in a debugging session.
echo "==> flight-recorder smoke (hotspotsim -trace + hotspottrace summarize)"
trace_start=$(date +%s)
mkdir -p .trace
go run ./cmd/hotspotsim -worm hitlist -pop 5000 -t 100 -rate 200 -sensors 200 \
  -seed 7 -trace .trace/smoke.ndjson > /dev/null
go run ./cmd/hotspottrace summarize .trace/smoke.ndjson
go run ./cmd/hotspottrace tree .trace/smoke.ndjson > /dev/null
echo "trace smoke: recorded and summarized in $(( $(date +%s) - trace_start ))s"

# hotspotd smoke: boot the server on an ephemeral port, drive it with the
# deterministic load harness (duplicate submissions, malformed bodies,
# client disconnects), then SIGTERM and require a clean drain — end-to-end
# proof that admission control, coalescing, and graceful shutdown hold in a
# real process, not just in httptest.
echo "==> hotspotd smoke (hotspotload -quick against a live server)"
serve_start=$(date +%s)
mkdir -p .serve
go build -o .serve/hotspotd ./cmd/hotspotd
go build -o .serve/hotspotload ./cmd/hotspotload
.serve/hotspotd -addr 127.0.0.1:0 -dir .serve/data -max-body 65536 > .serve/hotspotd.log 2>&1 &
hotspotd_pid=$!
addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's/^hotspotd: listening on //p' .serve/hotspotd.log)
  [ -n "$addr" ] && break
  kill -0 "$hotspotd_pid" 2>/dev/null || { cat .serve/hotspotd.log; exit 1; }
  sleep 0.1
done
[ -n "$addr" ] || { echo "hotspotd: never reported its address"; cat .serve/hotspotd.log; exit 1; }
.serve/hotspotload -quick -addr "$addr"
kill -TERM "$hotspotd_pid"
wait "$hotspotd_pid"
grep -q 'hotspotd: drained' .serve/hotspotd.log || { echo "hotspotd: no clean drain"; cat .serve/hotspotd.log; exit 1; }
echo "hotspotd smoke: served and drained cleanly in $(( $(date +%s) - serve_start ))s"

# Non-blocking: surface benchmark regressions between the two most recent
# committed snapshots without failing the gate (exit 2 = regression is
# review information; refreshing the snapshot is a deliberate act).
echo "==> scripts/benchdiff.sh (non-blocking)"
scripts/benchdiff.sh || echo "benchdiff: flagged (non-blocking, see output above)"

echo "==> all checks passed"
