#!/usr/bin/env bash
# Tier-1 gate: build, vet, the repo's own determinism/concurrency lint
# suite, the full test suite, and the race detector over the concurrent
# packages. CI runs exactly this script; run it locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go run ./cmd/reprolint -baseline lint.baseline ./..."
lint_start=$(date +%s)
mkdir -p .lint
if ! go run ./cmd/reprolint -baseline lint.baseline ./... | tee .lint/findings.txt; then
  # Machine-readable copy for the CI failure artifact / local tooling.
  go run ./cmd/reprolint -baseline lint.baseline -json ./... > .lint/findings.json || true
  echo "reprolint: findings recorded in .lint/findings.txt and .lint/findings.json"
  exit 1
fi
echo "reprolint: clean in $(( $(date +%s) - lint_start ))s (9 analyzers, typed whole-module pass)"

echo "==> go test ./..."
go test ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> go run ./cmd/xcheck -n 25 -budget 60s -trace-dir .trace"
go run ./cmd/xcheck -n 25 -budget 60s -trace-dir .trace

# Flight-recorder smoke: one traced CLI run end to end (record, dump,
# summarize) so a broken -trace path or NDJSON schema fails the gate with
# a one-line repro rather than surfacing in a debugging session.
echo "==> flight-recorder smoke (hotspotsim -trace + hotspottrace summarize)"
trace_start=$(date +%s)
mkdir -p .trace
go run ./cmd/hotspotsim -worm hitlist -pop 5000 -t 100 -rate 200 -sensors 200 \
  -seed 7 -trace .trace/smoke.ndjson > /dev/null
go run ./cmd/hotspottrace summarize .trace/smoke.ndjson
go run ./cmd/hotspottrace tree .trace/smoke.ndjson > /dev/null
echo "trace smoke: recorded and summarized in $(( $(date +%s) - trace_start ))s"

# Non-blocking: surface benchmark regressions between the two most recent
# committed snapshots without failing the gate (exit 2 = regression is
# review information; refreshing the snapshot is a deliberate act).
echo "==> scripts/benchdiff.sh (non-blocking)"
scripts/benchdiff.sh || echo "benchdiff: flagged (non-blocking, see output above)"

echo "==> all checks passed"
