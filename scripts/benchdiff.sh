#!/usr/bin/env bash
# Benchmark regression gate: diff two BENCH_*.json snapshots with
# cmd/benchsnap -compare, flagging >15% ns_per_op or allocs_per_op growth.
#
# Usage:
#   scripts/benchdiff.sh                      # two most recent snapshots
#   scripts/benchdiff.sh OLD.json NEW.json    # explicit pair
#
# Exit codes: 0 clean (or fewer than two snapshots to compare),
# 2 regression over threshold, 1 comparison failure. CI runs this as a
# non-blocking step — the diff is information for review, not a build gate.
set -euo pipefail
cd "$(dirname "$0")/.."

old="${1:-}"
new="${2:-}"
if [[ -z "$new" ]]; then
  snaps=()
  while IFS= read -r f; do snaps+=("$f"); done < <(ls BENCH_*.json 2>/dev/null | sort)
  if (( ${#snaps[@]} < 2 )); then
    echo "benchdiff: fewer than two BENCH_*.json snapshots, nothing to compare"
    exit 0
  fi
  old="${snaps[-2]}"
  new="${snaps[-1]}"
fi

go run ./cmd/benchsnap -compare "$old" "$new"
