#!/usr/bin/env bash
# Benchmark snapshot pipeline: run the standard CodeRedII driver benchmarks
# (and any extra pattern given as $1) with -benchmem, parse the output with
# cmd/benchsnap, and write BENCH_<date>.json at the repo root. Commit the
# file so performance changes show up in review diffs. Non-blocking in CI.
#
# Usage:
#   scripts/bench.sh                      # the snapshot set
#   scripts/bench.sh 'Benchmark.*Driver'  # custom pattern
#   BENCHTIME=3x COUNT=2 scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

# The unanchored RunExactCodeRedII leg matches the serial, Metrics, and
# Parallel variants, so the snapshot records the worker pool's overhead or
# speedup next to the serial baseline on every host.
pattern="${1:-BenchmarkRun(Exact|Fast)CodeRedII|BenchmarkFleetObserve|BenchmarkSweepResume}"
date="$(date -u +%F)"
out="BENCH_${date}.json"

go test -run '^$' -bench "$pattern" -benchmem \
  -benchtime "${BENCHTIME:-1x}" -count "${COUNT:-1}" . |
  tee /dev/stderr |
  go run ./cmd/benchsnap -date "$date" -o "$out"

echo "wrote $out"

# Overhead gate (intra-snapshot, so host speed drift between snapshots
# can't mask it): attaching the flight recorder must stay within 10% of
# the plain fast driver's ns/op. Skipped for custom patterns that don't
# run both benchmarks.
if grep -q '"name": "BenchmarkRunFastCodeRedIITrace"' "$out"; then
  echo "==> benchsnap -overhead (trace recorder <=10% over plain fast driver)"
  go run ./cmd/benchsnap \
    -overhead 'BenchmarkRunFastCodeRedII=BenchmarkRunFastCodeRedIITrace:10' "$out"
fi
