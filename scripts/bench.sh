#!/usr/bin/env bash
# Benchmark snapshot pipeline: run the standard CodeRedII driver benchmarks
# (and any extra pattern given as $1) with -benchmem, parse the output with
# cmd/benchsnap, and write BENCH_<date>.json at the repo root. Commit the
# file so performance changes show up in review diffs. Non-blocking in CI.
#
# Usage:
#   scripts/bench.sh                      # the snapshot set
#   scripts/bench.sh 'Benchmark.*Driver'  # custom pattern
#   BENCHTIME=3x COUNT=2 scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

# The unanchored Run(Exact|Fast)CodeRedII leg matches the serial, Metrics,
# Trace, and Parallel variants, so the snapshot records each worker pool's
# overhead or speedup next to its serial baseline on every host. The
# internet-scale leg records the §14 scale contract (10⁷/10⁸-host CodeRedII
# outbreaks under the fast driver).
date="$(date -u +%F)"
out="BENCH_${date}.json"

if [ $# -ge 1 ]; then
  go test -run '^$' -bench "$1" -benchmem \
    -benchtime "${BENCHTIME:-1x}" -count "${COUNT:-1}" . |
    tee /dev/stderr |
    go run ./cmd/benchsnap -date "$date" -o "$out"
else
  # Two legs: the millisecond-scale set runs 3 iterations so single-shot
  # scheduler noise (±10% on shared hosts) doesn't swamp the numbers the
  # compare/overhead gates consume, while the internet-scale giants stay
  # single-shot — one 10⁸-host outbreak is minutes of signal on its own.
  {
    go test -run '^$' -benchmem -count "${COUNT:-1}" . \
      -bench 'BenchmarkRun(Exact|Fast)CodeRedII|BenchmarkFleetObserve|BenchmarkSweepResume|BenchmarkRunFastProxGraph' \
      -benchtime "${BENCHTIME:-3x}"
    go test -run '^$' -benchmem -count 1 . \
      -bench 'BenchmarkRunFastInternetScale' -benchtime 1x
  } |
    tee /dev/stderr |
    go run ./cmd/benchsnap -date "$date" -o "$out"
fi

echo "wrote $out"

# Overhead gate (intra-snapshot, so host speed drift between snapshots
# can't mask it): attaching the flight recorder must stay within 15% of
# the plain fast driver's ns/op. The budget is relative, so speeding up
# the plain driver tightens it for free: the slot-arena rewrite cut the
# plain run ~15%, which pushed the recorder's unchanged ~150 ns/event
# cost from ~8% to ~9% of the run — 15% keeps headroom for single-shot
# benchtime noise while still catching a per-event cost doubling.
# Skipped for custom patterns that don't run both benchmarks.
if grep -q '"name": "BenchmarkRunFastCodeRedIITrace"' "$out"; then
  echo "==> benchsnap -overhead (trace recorder <=15% over plain fast driver)"
  go run ./cmd/benchsnap \
    -overhead 'BenchmarkRunFastCodeRedII=BenchmarkRunFastCodeRedIITrace:15' "$out"
fi
