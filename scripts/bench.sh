#!/usr/bin/env bash
# Benchmark snapshot pipeline: run the standard CodeRedII driver benchmarks
# (and any extra pattern given as $1) with -benchmem, parse the output with
# cmd/benchsnap, and write BENCH_<date>.json at the repo root. Commit the
# file so performance changes show up in review diffs. Non-blocking in CI.
#
# Usage:
#   scripts/bench.sh                      # the snapshot set
#   scripts/bench.sh 'Benchmark.*Driver'  # custom pattern
#   BENCHTIME=3x COUNT=2 scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

# The unanchored RunExactCodeRedII leg matches the serial, Metrics, and
# Parallel variants, so the snapshot records the worker pool's overhead or
# speedup next to the serial baseline on every host.
pattern="${1:-BenchmarkRun(Exact|Fast)CodeRedII|BenchmarkFleetObserve|BenchmarkSweepResume}"
date="$(date -u +%F)"
out="BENCH_${date}.json"

go test -run '^$' -bench "$pattern" -benchmem \
  -benchtime "${BENCHTIME:-1x}" -count "${COUNT:-1}" . |
  tee /dev/stderr |
  go run ./cmd/benchsnap -date "$date" -o "$out"

echo "wrote $out"
