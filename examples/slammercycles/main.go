// Slammercycles: the algorithmic-factor case study. Shows the exact cycle
// census of the Slammer worm's corrupted LCG, contrasts it with a proper
// increment, and demonstrates a host trapped in a short cycle hammering the
// same handful of addresses forever.
package main

import (
	"fmt"
	"log"

	hotspots "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	for variant := 0; variant < 3; variant++ {
		m := hotspots.SlammerCycleMap(variant)
		census := m.Census()
		fmt.Printf("Slammer variant %d (b=%#x): %d cycles\n", variant, m.B, m.TotalCycles())
		for _, c := range census {
			if c.Length >= 1<<28 || c.Length <= 2 {
				fmt.Printf("  %4d cycle(s) of length %d\n", c.Cycles, c.Length)
			}
		}
	}

	// The ablation: a proper odd increment gives one full-period cycle.
	intended, err := hotspots.NewCycleMap(214013, 2531011, 32)
	if err != nil {
		return err
	}
	fmt.Printf("\nwith a proper odd increment: %d cycle of length 2^32 — no trap states\n",
		intended.TotalCycles())

	// A trapped host: every member of a short cycle probes only that
	// cycle's addresses, wrapping forever.
	m := hotspots.SlammerCycleMap(0)
	prog, ok := m.StatesWithPeriodAtMost(1 << 10)
	if !ok {
		return fmt.Errorf("no short cycles found")
	}
	seed := prog.Nth(0)
	period := m.Period(seed)
	fmt.Printf("\nhost seeded at %#x is trapped in a %d-state cycle;\n", seed, period)
	fmt.Println("its first wrap of targets (one per line, then it repeats forever):")
	state := seed
	for i := uint64(0); i < period && i < 8; i++ {
		state = m.Step(state)
		fmt.Printf("  probe %d → %v\n", i+1, hotspots.Addr(state))
	}
	if period > 8 {
		fmt.Printf("  … (%d more, then the same %d addresses again — a de facto\n", period-8, period)
		fmt.Println("  targeted denial-of-service on those hosts)")
	}

	// What a month of scanning looks like in aggregate: expected unique
	// sources at an address are proportional to min(cycle length, window).
	fmt.Println("\ncycle census drives Figure 2: addresses on short cycles see only")
	fmt.Println("the few hosts trapped with them; addresses on long cycles see most")
	fmt.Println("of the infected population.")
	return nil
}
