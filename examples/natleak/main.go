// Natleak: the environmental-factor case study. A CodeRedII-infected host
// behind a NAT at 192.168.0.100 applies its "same /8" local preference to
// 192.0.0.0/8 — and since 192.168/16 is the only private /16 in that /8,
// half of all its probes leak onto the public Internet's 192/8, flooding
// any darknet there (the paper's M block).
package main

import (
	"fmt"
	"log"

	hotspots "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const probes = 2000000
	fleet, err := hotspots.NewSensorFleet(hotspots.IMSBlocks())
	if err != nil {
		return err
	}

	hosts := []struct {
		label string
		own   string
	}{
		{label: "public host outside 192/8", own: "18.31.0.5"},
		{label: "NAT'd host at 192.168.0.100", own: "192.168.0.100"},
	}
	for _, h := range hosts {
		own, err := hotspots.ParseAddr(h.own)
		if err != nil {
			return err
		}
		gen := hotspots.CodeRedII.New(own, 7)
		fleet.Reset()
		var private int
		for i := 0; i < probes; i++ {
			dst := gen.Next()
			if dst.IsPrivate() {
				private++ // never leaves the NAT site
				continue
			}
			fleet.Observe(own, dst)
		}
		fmt.Printf("%s — %d probes (%0.1f%% stayed in private space):\n",
			h.label, probes, 100*float64(private)/probes)
		for _, s := range fleet.Sensors() {
			if s.TotalAttempts() == 0 {
				continue
			}
			fmt.Printf("  block %-5s attempts=%-6d unique-source=%d\n",
				s.Block(), s.TotalAttempts(), s.UniqueSources())
		}
		m := fleet.Sensor("M")
		fmt.Printf("  → M block (192.52.92.0/22, inside public 192/8): %d attempts\n\n",
			m.TotalAttempts())
	}

	fmt.Println("Same worm, same algorithm — only the topology (a NAT assigning a")
	fmt.Println("private address) moved: an environmental factor made the hotspot.")
	return nil
}
