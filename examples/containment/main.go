// Containment: the paper's closing argument made concrete. Detection is
// only useful if it triggers response in time — so wire two detector
// fleets into Internet-quarantine-style filtering during a CodeRedII/NAT
// outbreak and compare how much of the population each one saves.
package main

import (
	"fmt"
	"log"

	hotspots "repro"
	"repro/internal/detect"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	pop, err := hotspots.SynthesizePopulation(hotspots.PopulationConfig{
		Size:     30000,
		Slash8s:  30,
		Slash16s: 900,
		Anchors: []hotspots.CoverageAnchor{
			{K: 5, Share: 0.106}, {K: 40, Share: 0.505}, {K: 250, Share: 0.913}, {K: 900, Share: 1},
		},
		Include192Slash8: true,
		Seed:             5,
	})
	if err != nil {
		return err
	}
	// 15% of hosts NAT'd into one shared 192.168/16 (the paper's model).
	if err := pop.AssignNAT(0.15, 0, 6); err != nil {
		return err
	}

	fleets := []struct {
		name  string
		build func() ([]hotspots.Prefix, error)
	}{
		{name: "none (no response)", build: nil},
		{name: "2000 random /24s", build: func() ([]hotspots.Prefix, error) {
			return hotspots.RandomSlash24Placement(2000, 7, nil)
		}},
		{name: "255 sensors across 192/8", build: func() ([]hotspots.Prefix, error) {
			return detect.Slash16SweepOfSlash8(192, []uint32{168}, 7), nil
		}},
	}

	fmt.Printf("%-28s %-22s %s\n", "response fleet", "containment engaged", "final infected")
	for _, f := range fleets {
		cfg := hotspots.SimConfig{
			Pop:         pop,
			Model:       hotspots.CodeRedIIRateModel(),
			ScanRate:    45,
			TickSeconds: 1,
			MaxSeconds:  900,
			SeedHosts:   25,
			Seed:        8, // identical outbreak for every fleet
		}
		var policy *sim.Containment
		if f.build != nil {
			prefixes, err := f.build()
			if err != nil {
				return err
			}
			fleet, err := hotspots.NewDetectorFleet(prefixes, 5)
			if err != nil {
				return err
			}
			cfg.Sensors = fleet
			cfg.SensorSet = fleet.Union()
			policy = &sim.Containment{
				Trigger: func() bool { return fleet.AlertedFraction() >= 0.10 },
				Drop:    0.95,
			}
			cfg.Containment = policy
		}
		res, err := hotspots.Simulate(cfg)
		if err != nil {
			return err
		}
		engaged := "—"
		if policy != nil && policy.Engaged() {
			engaged = fmt.Sprintf("t=%.0fs", policy.EngagedAt)
		}
		fmt.Printf("%-28s %-22s %.1f%%\n", f.name, engaged, 100*res.FractionInfected())
	}

	fmt.Println("\nThe 255-sensor fleet sitting in the NAT leak's hotspot detects")
	fmt.Println("first, triggers filtering earliest, and strands the most hosts")
	fmt.Println("uninfected — local, topology-aware detection pays for itself.")
	return nil
}
