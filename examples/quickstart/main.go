// Quickstart: simulate a uniform-scanning worm and a hit-list worm over the
// paper's CodeRedII-style vulnerable population and compare what a darknet
// sensor fleet sees — the smallest end-to-end tour of the library.
package main

import (
	"fmt"
	"log"

	hotspots "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A scaled-down vulnerable population with the paper's clustering
	// shape: most hosts concentrated in a few /16s.
	popCfg := hotspots.PopulationConfig{
		Size:             20000,
		Slash8s:          30,
		Slash16s:         800,
		Include192Slash8: true,
		Seed:             1,
	}
	// Pin the clustering to the paper's measured coverage curve: the top
	// 30 /16s hold half the population.
	popCfg.Anchors = []hotspots.CoverageAnchor{
		{K: 4, Share: 0.106}, {K: 30, Share: 0.505}, {K: 200, Share: 0.913}, {K: 800, Share: 1},
	}
	pop, err := hotspots.SynthesizePopulation(popCfg)
	if err != nil {
		return err
	}
	fmt.Printf("population: %d vulnerable hosts across %d /8s\n",
		pop.Size(), len(pop.Slash8Histogram()))

	// A hit-list covering half the population with 30 /16s.
	list, cover := hotspots.BuildHitList(pop.Addrs(false), 30)
	fmt.Printf("hit-list: 30 /16s covering %.1f%% of the vulnerable population\n\n", 100*cover)

	for _, tc := range []struct {
		name  string
		model hotspots.RateModel
	}{
		{name: "uniform scanner", model: hotspots.UniformRateModel()},
		{name: "hit-list scanner", model: hotspots.HitListRateModel(list)},
	} {
		res, err := hotspots.Simulate(hotspots.SimConfig{
			Pop:         pop,
			Model:       tc.model,
			ScanRate:    700, // scaled so the small population takes off
			TickSeconds: 1,
			MaxSeconds:  2500,
			SeedHosts:   25,
			Seed:        42,
		})
		if err != nil {
			return err
		}
		t50 := "never"
		if t, ok := res.TimeToFraction(0.5); ok {
			t50 = fmt.Sprintf("%.0fs", t)
		}
		fmt.Printf("%-18s infected %5.1f%% of all hosts (50%% of population at %s)\n",
			tc.name, 100*res.FractionInfected(), t50)
	}

	fmt.Println("\nThe hit-list worm saturates its covered half quickly and never")
	fmt.Println("touches the rest — the algorithmic hotspot of Figure 5a.")
	return nil
}
