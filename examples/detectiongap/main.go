// Detectiongap: the distributed-detection failure of Section 5. A hit-list
// worm infects nearly everything it can reach while a fleet of darknet
// detectors — one per vulnerable /16, zero false positives, instantaneous
// communication — almost never reaches a quorum.
package main

import (
	"fmt"
	"log"

	hotspots "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	popCfg := hotspots.PopulationConfig{
		Size:     30000,
		Slash8s:  30,
		Slash16s: 900,
		Anchors: []hotspots.CoverageAnchor{
			{K: 5, Share: 0.106}, {K: 40, Share: 0.505}, {K: 250, Share: 0.913}, {K: 900, Share: 1},
		},
		Include192Slash8: true,
		Seed:             3,
	}
	pop, err := hotspots.SynthesizePopulation(popCfg)
	if err != nil {
		return err
	}

	// One /24 detector inside every vulnerable /16, alerting at 5 probes —
	// the paper's idealized fleet.
	var slash16s []uint32
	for _, sc := range pop.Slash16Histogram() {
		slash16s = append(slash16s, sc.Network)
	}
	prefixes := hotspots.OnePerSlash16Placement(slash16s, 9)

	fmt.Printf("population: %d hosts in %d /16s; detectors: %d (threshold 5)\n\n",
		pop.Size(), len(slash16s), len(prefixes))
	fmt.Printf("%-22s %-12s %-12s %-10s\n", "hit-list size", "% infected", "% alerted", "quorum?")

	var lastOutcomes hotspots.ProbeOutcomeCounts
	for _, k := range []int{5, 40, 250, 900} {
		list, _ := hotspots.BuildHitList(pop.Addrs(false), k)
		fleet, err := hotspots.NewDetectorFleet(prefixes, 5)
		if err != nil {
			return err
		}
		res, err := hotspots.Simulate(hotspots.SimConfig{
			Pop:         pop,
			Model:       hotspots.HitListRateModel(list),
			ScanRate:    70,
			TickSeconds: 1,
			MaxSeconds:  1500,
			SeedHosts:   25,
			Seed:        11,
			Sensors:     fleet,
			SensorSet:   fleet.Union(),
		})
		if err != nil {
			return err
		}
		quorum := "NO — outbreak missed"
		if fleet.AlertedFraction() >= 0.5 {
			quorum = "yes"
		}
		fmt.Printf("%-22d %-12.1f %-12.1f %s\n",
			k, 100*res.FractionInfected(), 100*fleet.AlertedFraction(), quorum)
		lastOutcomes = res.Outcomes
	}

	// Probe-outcome accounting explains the blindness: the k=900 worm's
	// probes overwhelmingly land inside the population (infection) rather
	// than on the monitored darknet (sensor-hit).
	fmt.Printf("\nprobe accounting, k=900: %d probes — %s\n",
		lastOutcomes.Total(), lastOutcomes)

	fmt.Println("\nEven with pre-knowledge of the vulnerable population and ubiquitous")
	fmt.Println("detectors, hit-list hotspots blind a quorum-based global detector;")
	fmt.Println("only local detection sees the targeted attack.")
	return nil
}
