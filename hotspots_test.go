package hotspots_test

// Integration tests of the public facade: everything a downstream user
// touches, exercised end-to-end through the exported API only.

import (
	"testing"

	hotspots "repro"
)

func TestParseHelpers(t *testing.T) {
	a, err := hotspots.ParseAddr("192.168.0.100")
	if err != nil {
		t.Fatal(err)
	}
	if !a.IsPrivate() {
		t.Error("192.168.0.100 not private")
	}
	p, err := hotspots.ParsePrefix("10.0.0.0/8")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Contains(hotspots.Addr(0x0a010203)) {
		t.Error("prefix containment broken")
	}
	if _, err := hotspots.ParseAddr("x"); err == nil {
		t.Error("bad address accepted")
	}
	if _, err := hotspots.ParsePrefix("10.0.0.0"); err == nil {
		t.Error("bad prefix accepted")
	}
}

func TestWormFactories(t *testing.T) {
	own, _ := hotspots.ParseAddr("18.31.0.5")
	factories := []hotspots.WormFactory{
		hotspots.Uniform,
		hotspots.Permutation,
		hotspots.CodeRedII,
		hotspots.Slammer(1),
		hotspots.Blaster(hotspots.DefaultBlasterTicks()),
	}
	for _, f := range factories {
		gen := f.New(own, 1)
		for i := 0; i < 10; i++ {
			_ = gen.Next()
		}
		if f.Name() == "" {
			t.Error("factory without name")
		}
	}
}

func TestCycleMaps(t *testing.T) {
	m := hotspots.SlammerCycleMap(0)
	if got := m.TotalCycles(); got != 64 {
		t.Errorf("Slammer cycles = %d, want 64", got)
	}
	proper := hotspots.SlammerIntendedMap()
	if got := proper.TotalCycles(); got != 1 {
		t.Errorf("intended-map cycles = %d, want 1", got)
	}
	if _, err := hotspots.NewCycleMap(3, 1, 32); err == nil {
		t.Error("invalid multiplier accepted")
	}
}

func TestEndToEndSimulationWithDetection(t *testing.T) {
	pop, err := hotspots.SynthesizePopulation(hotspots.PopulationConfig{
		Size:     5000,
		Slash8s:  10,
		Slash16s: 100,
		Anchors: []hotspots.CoverageAnchor{
			{K: 2, Share: 0.2}, {K: 20, Share: 0.6}, {K: 100, Share: 1},
		},
		Include192Slash8: true,
		Seed:             1,
	})
	if err != nil {
		t.Fatal(err)
	}
	list, cover := hotspots.BuildHitList(pop.Addrs(false), 20)
	if cover < 0.55 || cover > 0.65 {
		t.Errorf("hit-list coverage = %.3f, want ≈0.6", cover)
	}

	var slash16s []uint32
	for _, sc := range pop.Slash16Histogram() {
		slash16s = append(slash16s, sc.Network)
	}
	fleet, err := hotspots.NewDetectorFleet(hotspots.OnePerSlash16Placement(slash16s, 2), 5)
	if err != nil {
		t.Fatal(err)
	}

	res, err := hotspots.Simulate(hotspots.SimConfig{
		Pop:         pop,
		Model:       hotspots.HitListRateModel(list),
		ScanRate:    500,
		TickSeconds: 1,
		MaxSeconds:  800,
		SeedHosts:   10,
		Seed:        3,
		Sensors:     fleet,
		SensorSet:   fleet.Union(),
	})
	if err != nil {
		t.Fatal(err)
	}
	frac := res.FractionInfected()
	if frac < 0.5 || frac > 0.7 {
		t.Errorf("infected fraction = %.3f, want ≈ coverage 0.6", frac)
	}
	// The detection gap: most sensors silent despite a saturated epidemic.
	if fleet.AlertedFraction() > 0.45 {
		t.Errorf("alerted fraction = %.3f, want < coverage-bounded minority", fleet.AlertedFraction())
	}
}

func TestExactSimulationFacade(t *testing.T) {
	pop, err := hotspots.SynthesizePopulation(hotspots.PopulationConfig{
		Size: 500, Slash8s: 5, Slash16s: 20, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := hotspots.SimulateExact(hotspots.ExactSimConfig{
		Pop:         pop,
		Factory:     hotspots.Uniform,
		ScanRate:    100,
		TickSeconds: 1,
		MaxSeconds:  10,
		SeedHosts:   5,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Infected < 5 {
		t.Error("seeds lost")
	}
}

func TestAnalyzeDistributionFacade(t *testing.T) {
	rep := hotspots.AnalyzeDistribution([]uint64{1, 1, 1, 1, 500})
	if rep.IsUniform() {
		t.Error("hotspotted distribution reported uniform")
	}
	if len(rep.Hotspots) != 1 {
		t.Errorf("hotspots = %d, want 1", len(rep.Hotspots))
	}
	if hotspots.Algorithmic.String() != "algorithmic" ||
		hotspots.Environmental.String() != "environmental" {
		t.Error("factor class names wrong")
	}
}

func TestSensorFleetFacade(t *testing.T) {
	fleet, err := hotspots.NewSensorFleet(hotspots.IMSBlocks())
	if err != nil {
		t.Fatal(err)
	}
	src, _ := hotspots.ParseAddr("1.2.3.4")
	dst, _ := hotspots.ParseAddr("41.0.0.1")
	if !fleet.Observe(src, dst) {
		t.Error("Z-block probe not observed")
	}
	if fleet.Sensor("Z").TotalAttempts() != 1 {
		t.Error("attempt not counted")
	}
}

func TestExperimentRegistryFacade(t *testing.T) {
	names := hotspots.ExperimentNames()
	if len(names) != 16 {
		t.Fatalf("experiments = %d, want 16", len(names))
	}
	res, err := hotspots.RunExperiment("table1", 1, hotspots.QuickScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) == 0 {
		t.Error("table1 produced no table")
	}
	if _, err := hotspots.RunExperiment("bogus", 1, hotspots.QuickScale); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestWormFactoryHelpers(t *testing.T) {
	own, _ := hotspots.ParseAddr("18.31.0.5")
	set, cover := hotspots.BuildHitList([]hotspots.Addr{own, own + 1, own + 2}, 1)
	if cover != 1 || set.Size() != 1<<16 {
		t.Errorf("BuildHitList cover=%v size=%d", cover, set.Size())
	}
	for _, f := range []hotspots.WormFactory{
		hotspots.HitListWorm(set),
		hotspots.Witty(),
		hotspots.SequentialWorm(),
		hotspots.LocalPreferenceWorm(hotspots.Preference{Same16: 0.5}),
	} {
		g := f.New(own, 9)
		for i := 0; i < 5; i++ {
			_ = g.Next()
		}
	}
}

func TestRateModelHelpers(t *testing.T) {
	if m := hotspots.CodeRedIIRateModel(); m.Name() == "" {
		t.Error("CRII model has no name")
	}
	m, err := hotspots.LocalPreferenceRateModel(hotspots.Preference{Same8: 0.25})
	if err != nil || m.Name() == "" {
		t.Errorf("local-pref model: %v", err)
	}
	if _, err := hotspots.LocalPreferenceRateModel(hotspots.Preference{Same8: 5}); err == nil {
		t.Error("invalid preference accepted")
	}
}

func TestSIModelFacade(t *testing.T) {
	m, err := hotspots.NewSIModel(10, 100000, 25, float64(uint64(1)<<32))
	if err != nil {
		t.Fatal(err)
	}
	if m.Infected(0) < 24 || m.Infected(0) > 26 {
		t.Errorf("I(0) = %v", m.Infected(0))
	}
	if _, err := hotspots.NewSIModel(0, 1, 1, 1); err == nil {
		t.Error("invalid SI config accepted")
	}
}

func TestDetectorConstructors(t *testing.T) {
	scan, err := hotspots.NewScanDetector()
	if err != nil {
		t.Fatal(err)
	}
	src, _ := hotspots.ParseAddr("6.6.6.6")
	for i := 0; i < 10 && !scan.IsScanner(src); i++ {
		scan.Observe(src, hotspots.ProbeFailure)
	}
	if !scan.IsScanner(src) {
		t.Error("pure scanner not flagged")
	}

	content, err := hotspots.NewContentDetector()
	if err != nil {
		t.Fatal(err)
	}
	if content.Alarms() != 0 {
		t.Error("fresh content detector has alarms")
	}
}

func TestRandomPlacementFacade(t *testing.T) {
	exclude := &hotspots.AddrSet{}
	prefixes, err := hotspots.RandomSlash24Placement(50, 1, exclude)
	if err != nil {
		t.Fatal(err)
	}
	if len(prefixes) != 50 {
		t.Errorf("placed %d, want 50", len(prefixes))
	}
}
